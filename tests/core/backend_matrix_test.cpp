// Pluggable-backend matrix coverage (`ctest -L backend-matrix`).
//
// The default cell (eq3 + dtw) is proven bit-identical to the
// pre-refactor pipeline by the layout_v1 fixture replay in
// replay/layout_compat_test.cpp; here the non-default cells get
// deterministic seeded accuracy envelopes on sim scenarios (including
// a faulted fleet run), the factories are pinned to their config
// switches, and the EKF backend is driven through TrackerEngine's
// concurrent batch path (the TSan leg of tools/run_checks.sh re-runs
// this label).
//
// Envelope tolerances: the default pipeline holds a ~4-10 deg median
// (paper Sec. 5.1, reproduced in sim/experiment_test.cpp with < 12 deg
// slack for short runs). The alternative backends are smoothing
// estimators layered on the same matcher, so they get the same 12 deg
// ceiling on the clean scenario and a wider 16 deg one under transport
// faults, where coasting through dropout bursts costs accuracy.
#include <cmath>
#include <complex>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/tracker.h"
#include "engine/tracker_engine.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "tests/core/test_helpers.h"

namespace vihot::core {
namespace {

using testing::synthetic_phase;
using testing::synthetic_profile;

sim::ScenarioConfig small_scenario(std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.seed = seed;
  c.runtime_sessions = 2;
  c.runtime_duration_s = 15.0;
  c.profiling_sweep_s = 8.0;
  return c;
}

TEST(BackendMatrixTest, FactorySelectsConfiguredBackends) {
  const auto profile = std::make_shared<CsiProfile>(synthetic_profile(5));
  {
    ViHotTracker t(profile, {});
    EXPECT_EQ(t.sanitizer().backend(), SanitizerBackend::kEqDiff);
    EXPECT_EQ(t.backend().backend(), TrackerBackend::kDtw);
  }
  {
    TrackerConfig cfg;
    cfg.sanitizer_backend = SanitizerBackend::kKalman;
    cfg.tracker_backend = TrackerBackend::kEkf;
    ViHotTracker t(profile, cfg);
    EXPECT_EQ(t.sanitizer().backend(), SanitizerBackend::kKalman);
    EXPECT_EQ(t.backend().backend(), TrackerBackend::kEkf);
  }
}

TEST(BackendMatrixTest, DefaultRunEngagesOnlyDefaultBackends) {
  sim::ExperimentRunner runner(small_scenario(31));
  const sim::ExperimentResult res = runner.run();
  EXPECT_LT(res.errors.median_deg(), 12.0);
  EXPECT_GT(res.stage_stats.backend_eq3_frames, 0u);
  EXPECT_GT(res.stage_stats.backend_dtw_estimates, 0u);
  EXPECT_EQ(res.stage_stats.backend_kalman_frames, 0u);
  EXPECT_EQ(res.stage_stats.backend_ekf_estimates, 0u);
  EXPECT_EQ(res.stage_stats.ekf_updates, 0u);
}

TEST(BackendMatrixTest, KalmanSanitizerAccuracyEnvelope) {
  sim::ScenarioConfig cfg = small_scenario(31);
  cfg.tracker.sanitizer_backend = SanitizerBackend::kKalman;
  sim::ExperimentRunner runner(cfg);
  const sim::ExperimentResult res = runner.run();
  EXPECT_GT(res.errors.size(), 50u);
  EXPECT_LT(res.errors.median_deg(), 12.0);
  // The Kalman path actually ran — and the eq3 path did not.
  EXPECT_GT(res.stage_stats.backend_kalman_frames, 0u);
  EXPECT_EQ(res.stage_stats.backend_eq3_frames, 0u);

  // Deterministic: the same seed reproduces the same error set.
  sim::ExperimentRunner again(cfg);
  const sim::ExperimentResult res2 = again.run();
  ASSERT_EQ(res.errors.size(), res2.errors.size());
  EXPECT_DOUBLE_EQ(res.errors.median_deg(), res2.errors.median_deg());
}

TEST(BackendMatrixTest, EkfFusionAccuracyEnvelope) {
  sim::ScenarioConfig cfg = small_scenario(31);
  cfg.tracker.tracker_backend = TrackerBackend::kEkf;
  sim::ExperimentRunner runner(cfg);
  const sim::ExperimentResult res = runner.run();
  EXPECT_GT(res.errors.size(), 50u);
  EXPECT_LT(res.errors.median_deg(), 12.0);
  EXPECT_GT(res.stage_stats.backend_ekf_estimates, 0u);
  EXPECT_GT(res.stage_stats.ekf_propagations, 0u);
  EXPECT_GT(res.stage_stats.ekf_updates, 0u);
  EXPECT_EQ(res.stage_stats.backend_dtw_estimates, 0u);

  sim::ExperimentRunner again(cfg);
  const sim::ExperimentResult res2 = again.run();
  ASSERT_EQ(res.errors.size(), res2.errors.size());
  EXPECT_DOUBLE_EQ(res.errors.median_deg(), res2.errors.median_deg());
}

TEST(BackendMatrixTest, FullAlternativeCellSurvivesFaultedFleet) {
  // Kalman + EKF together on the corpus faults scenario shape (transport
  // faults + async ingest), served inline so the run is deterministic.
  sim::ScenarioConfig cfg = small_scenario(44);
  cfg.tracker.sanitizer_backend = SanitizerBackend::kKalman;
  cfg.tracker.tracker_backend = TrackerBackend::kEkf;
  cfg.faults.enabled = true;
  cfg.async_ingest = true;
  const sim::FleetResult res = sim::run_fleet(cfg, 0);
  EXPECT_EQ(res.sessions, 2u);
  EXPECT_GT(res.errors.size(), 50u);
  EXPECT_LT(res.errors.median_deg(), 16.0);
  EXPECT_GT(res.stage_stats.backend_kalman_frames, 0u);
  EXPECT_GT(res.stage_stats.ekf_updates, 0u);

  const sim::FleetResult res2 = sim::run_fleet(cfg, 0);
  ASSERT_EQ(res.errors.size(), res2.errors.size());
  EXPECT_DOUBLE_EQ(res.errors.median_deg(), res2.errors.median_deg());
}

// Phase-controlled measurement, as in engine_test.cpp: h[0] carries
// `phi` against a flat h[1], so the sanitized phase is exactly phi.
wifi::CsiMeasurement measurement(double t, double phi) {
  wifi::CsiMeasurement m;
  m.t = t;
  m.h[0].assign(4, std::polar(1.0, phi));
  m.h[1].assign(4, {1.0, 0.0});
  return m;
}

TEST(BackendMatrixTest, EkfUnderConcurrentBatchTicks) {
  // EKF sessions fed by producer threads while the main thread ticks
  // estimate_all: the per-session locks must keep the EKF state (and
  // its IMU side-channel) race-free. TSan target.
  TrackerConfig cfg;
  cfg.sanitizer_backend = SanitizerBackend::kKalman;
  cfg.tracker_backend = TrackerBackend::kEkf;
  engine::TrackerEngine engine({2});
  const auto profile = engine.add_profile(synthetic_profile(5));
  const double fp = profile->positions[2].fingerprint_phase;

  constexpr std::size_t kProducers = 4;
  std::vector<engine::SessionId> ids;
  for (std::size_t s = 0; s < kProducers; ++s) {
    ids.push_back(engine.create_session(profile, cfg));
  }

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kProducers; ++s) {
    producers.emplace_back([&, s] {
      const double rate = 0.8 + 0.2 * static_cast<double>(s);
      for (double t = 0.0; t < 1.5; t += 0.004) {
        const double theta = -0.5 + rate * t;
        engine.push_csi(ids[s], measurement(t, synthetic_phase(theta, fp)));
        // Sub-threshold gyro: exercises the EKF's IMU propagation path
        // without tripping the steering identifier into camera fallback.
        engine.push_imu(ids[s], {t, 0.04, 0.0});
      }
    });
  }

  // Racy phase: ticks interleave with the producers however the
  // scheduler likes — this is the TSan exercise, so only invariants
  // that hold under any interleaving are asserted.
  for (int tick = 0; tick < 40; ++tick) {
    const auto batch = engine.estimate_all(0.05 * tick);
    ASSERT_EQ(batch.size(), kProducers);
  }
  for (std::thread& p : producers) p.join();

  // Deterministic phase: feed inline past the concurrent stretch with
  // the head oscillating near forward (inside the forward-start hint)
  // and tick along — the EKF must anchor and produce valid outputs.
  std::size_t valid_results = 0;
  double feed_t = 1.5;
  for (double t = 2.0; t < 3.0; t += 0.05) {
    for (; feed_t < t; feed_t += 0.004) {
      const double theta = 0.3 * std::sin(6.0 * (feed_t - 1.5));
      for (std::size_t s = 0; s < kProducers; ++s) {
        engine.push_csi(ids[s], measurement(feed_t, synthetic_phase(theta, fp)));
      }
    }
    const auto batch = engine.estimate_all(t);
    ASSERT_EQ(batch.size(), kProducers);
    for (const TrackResult& r : batch) valid_results += r.valid;
  }
  EXPECT_GT(valid_results, 0u);
}

}  // namespace
}  // namespace vihot::core
