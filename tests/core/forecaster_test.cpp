#include "core/forecaster.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace vihot::core {
namespace {

// An estimate pointing at profile sample `last` with the given ratio.
OrientationEstimate estimate_at(const PositionProfile& pos, std::size_t last,
                                double speed_ratio) {
  OrientationEstimate e;
  e.valid = true;
  e.match_length = 21;
  e.match_start = last + 1 - e.match_length;
  e.speed_ratio = speed_ratio;
  e.theta_rad = pos.orientation.values[last];
  return e;
}

TEST(ForecasterTest, ZeroHorizonReturnsCurrent) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimate e = estimate_at(pos, 400, 1.0);
  const Forecast f = Forecaster::forecast(pos, e, 0.0);
  ASSERT_TRUE(f.valid);
  EXPECT_NEAR(f.theta_rad, pos.orientation.values[400], 1e-9);
  EXPECT_FALSE(f.clamped);
}

TEST(ForecasterTest, UnitRatioWalksProfileTime) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimate e = estimate_at(pos, 400, 1.0);
  const double horizon = 0.2;  // 40 samples at 200 Hz
  const Forecast f = Forecaster::forecast(pos, e, horizon);
  ASSERT_TRUE(f.valid);
  EXPECT_NEAR(f.theta_rad, pos.orientation.values[400 + 40], 0.02);
}

TEST(ForecasterTest, SpeedRatioScalesTheStep) {
  // Eq. (6): with ratio 2 (run-time turning twice the profiling speed),
  // predicting t_h ahead walks 2*t_h in profile time.
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimate e = estimate_at(pos, 300, 2.0);
  const Forecast f = Forecaster::forecast(pos, e, 0.1);
  ASSERT_TRUE(f.valid);
  EXPECT_NEAR(f.theta_rad, pos.orientation.values[300 + 40], 0.02);
}

TEST(ForecasterTest, ClampsAtProfileEnd) {
  const PositionProfile pos = testing::synthetic_position();
  const std::size_t last = pos.orientation.size() - 2;
  const OrientationEstimate e = estimate_at(pos, last, 1.0);
  const Forecast f = Forecaster::forecast(pos, e, 5.0);
  ASSERT_TRUE(f.valid);
  EXPECT_TRUE(f.clamped);
  EXPECT_NEAR(f.theta_rad, pos.orientation.values.back(), 1e-9);
}

TEST(ForecasterTest, InvalidEstimateGivesInvalidForecast) {
  const PositionProfile pos = testing::synthetic_position();
  OrientationEstimate bad;
  bad.valid = false;
  EXPECT_FALSE(Forecaster::forecast(pos, bad, 0.1).valid);
}

TEST(ForecasterTest, EmptyProfileGivesInvalidForecast) {
  PositionProfile empty;
  OrientationEstimate e;
  e.valid = true;
  EXPECT_FALSE(Forecaster::forecast(empty, e, 0.1).valid);
}

// Parameterized horizon sweep (the Fig. 10 knob): prediction error against
// the profile's own future grows with the horizon under a speed-ratio
// mismatch, and is exact when the ratio is exact.
class HorizonProperty : public ::testing::TestWithParam<double> {};

TEST_P(HorizonProperty, ExactRatioPredictsProfileFuture) {
  const double horizon = GetParam();
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimate e = estimate_at(pos, 500, 1.0);
  const Forecast f = Forecaster::forecast(pos, e, horizon);
  ASSERT_TRUE(f.valid);
  const double truth = pos.orientation.interpolate(
      pos.orientation.time_at(500) + horizon);
  EXPECT_NEAR(f.theta_rad, truth, 0.02) << "horizon=" << horizon;
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonProperty,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4));

}  // namespace
}  // namespace vihot::core
