#include "core/orientation_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/core/test_helpers.h"
#include "util/rng.h"

namespace vihot::core {
namespace {

// Builds a run-time phase stream for a head following theta_fn, sampled
// irregularly like CSMA, against the synthetic curve of test_helpers.
template <typename ThetaFn>
util::TimeSeries synthetic_stream(ThetaFn&& theta_fn, double t0, double t1,
                                  double fingerprint = 0.0,
                                  double noise_std = 0.004,
                                  std::uint64_t seed = 9) {
  util::Rng rng(seed);
  util::TimeSeries out;
  double t = t0;
  while (t < t1) {
    out.push(t, testing::synthetic_phase(theta_fn(t), fingerprint) +
                    rng.normal(0.0, noise_std));
    t += rng.uniform(0.0015, 0.0030);
  }
  return out;
}

TEST(OrientationEstimatorTest, TracksAMovingHead) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimator est;
  // Head turning at ~1.5 rad/s through the well-conditioned region.
  const auto theta_fn = [](double t) { return -0.8 + 1.5 * (t - 1.0); };
  const util::TimeSeries stream = synthetic_stream(theta_fn, 0.9, 2.0);
  for (double t = 1.15; t < 1.9; t += 0.1) {
    const OrientationEstimate e = est.estimate(pos, stream, t);
    ASSERT_TRUE(e.valid) << "t=" << t;
    EXPECT_NEAR(e.theta_rad, theta_fn(t), 0.12) << "t=" << t;
  }
}

TEST(OrientationEstimatorTest, SetupTimeReturnsInvalid) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimator est;
  const util::TimeSeries stream =
      synthetic_stream([](double) { return 0.0; }, 1.0, 1.05);
  // Window (100 ms) not yet covered by the stream.
  EXPECT_FALSE(est.estimate(pos, stream, 1.04).valid);
}

TEST(OrientationEstimatorTest, EmptyProfileInvalid) {
  PositionProfile empty;
  const OrientationEstimator est;
  const util::TimeSeries stream =
      synthetic_stream([](double) { return 0.0; }, 0.0, 1.0);
  EXPECT_FALSE(est.estimate(empty, stream, 0.5).valid);
}

TEST(OrientationEstimatorTest, SpeedRatioReflectsTurnSpeed) {
  const PositionProfile pos = testing::synthetic_position(
      0, 0.0, 200.0, /*sweep_speed_rad_s=*/1.6);
  const OrientationEstimator est;
  // Run-time turn twice as fast as the profile sweep: the matched
  // segment covers ~2x the window, so speed_ratio ~ 2.
  const auto fast = [](double t) { return -0.9 + 3.2 * (t - 1.0); };
  const util::TimeSeries stream = synthetic_stream(fast, 0.9, 1.5);
  const OrientationEstimate e = est.estimate(pos, stream, 1.4);
  ASSERT_TRUE(e.valid);
  EXPECT_GT(e.speed_ratio, 1.3);
  // And a slow turn gives a ratio below 1.
  const auto slow = [](double t) { return -0.6 + 0.8 * (t - 1.0); };
  const util::TimeSeries slow_stream = synthetic_stream(slow, 0.9, 2.2);
  const OrientationEstimate e2 = est.estimate(pos, slow_stream, 2.0);
  ASSERT_TRUE(e2.valid);
  EXPECT_LT(e2.speed_ratio, 1.1);
}

TEST(OrientationEstimatorTest, HardHintRestrictsBranch) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimator est;
  const auto theta_fn = [](double t) { return 0.2 + 1.2 * (t - 1.0); };
  const util::TimeSeries stream = synthetic_stream(theta_fn, 0.9, 1.6);
  ContinuityHint hint;
  hint.theta_rad = theta_fn(1.5);
  hint.max_dev_rad = 0.3;
  MatchContext ctx;
  ctx.hard_hint = &hint;
  const OrientationEstimate e = est.estimate(pos, stream, 1.5, ctx);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.theta_rad, theta_fn(1.5), 0.3);
}

TEST(OrientationEstimatorTest, ImpossibleHintFindsNothing) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimator est;
  const util::TimeSeries stream =
      synthetic_stream([](double) { return 0.0; }, 0.0, 1.0);
  ContinuityHint hint;
  hint.theta_rad = 5.0;  // outside the profiled range entirely
  hint.max_dev_rad = 0.1;
  MatchContext ctx;
  ctx.hard_hint = &hint;
  EXPECT_FALSE(est.estimate(pos, stream, 0.8, ctx).valid);
}

TEST(OrientationEstimatorTest, PhaseBiasIsSubtracted) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimator est;
  const auto theta_fn = [](double t) { return -0.5 + 1.4 * (t - 1.0); };
  // Stream with a 0.15 rad DC offset (head between grid positions).
  const util::TimeSeries stream =
      synthetic_stream(theta_fn, 0.9, 1.8, /*fingerprint=*/0.15);
  MatchContext ctx;
  ctx.phase_bias = 0.15;
  const OrientationEstimate with_bias = est.estimate(pos, stream, 1.6, ctx);
  const OrientationEstimate without = est.estimate(pos, stream, 1.6);
  ASSERT_TRUE(with_bias.valid);
  ASSERT_TRUE(without.valid);
  // With the bias removed the window matches the true region accurately.
  // (The un-corrected window can still fit SOME region with low cost —
  // that's the non-injectivity — so only the corrected accuracy is
  // asserted, not a distance ordering.)
  EXPECT_LT(with_bias.match_distance, 0.005);
  EXPECT_NEAR(with_bias.theta_rad, theta_fn(1.6), 0.15);
}

TEST(OrientationEstimatorTest, CandidatesSortedByDistance) {
  const PositionProfile pos = testing::synthetic_position();
  const OrientationEstimator est;
  const auto theta_fn = [](double t) { return 0.9 * std::sin(t); };
  const util::TimeSeries stream = synthetic_stream(theta_fn, 0.0, 3.0);
  const OrientationEstimate e = est.estimate(pos, stream, 2.5);
  ASSERT_TRUE(e.valid);
  ASSERT_GE(e.candidates.size(), 1u);
  EXPECT_DOUBLE_EQ(e.candidates.front().distance, e.match_distance);
  for (std::size_t i = 1; i < e.candidates.size(); ++i) {
    EXPECT_GE(e.candidates[i].distance, e.candidates[i - 1].distance);
  }
}

// Parameterized: tracking holds across window sizes (Fig. 13b's knob).
class WindowSizeProperty : public ::testing::TestWithParam<double> {};

TEST_P(WindowSizeProperty, TracksWithinTolerance) {
  MatcherConfig cfg;
  cfg.window_s = GetParam();
  const OrientationEstimator est(cfg);
  const PositionProfile pos = testing::synthetic_position();
  const auto theta_fn = [](double t) { return -0.7 + 1.3 * (t - 1.0); };
  const util::TimeSeries stream = synthetic_stream(theta_fn, 0.5, 2.2);
  const OrientationEstimate e = est.estimate(pos, stream, 2.0);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.theta_rad, theta_fn(2.0), 0.25);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSizeProperty,
                         ::testing::Values(0.01, 0.02, 0.05, 0.1, 0.2, 0.3));

}  // namespace
}  // namespace vihot::core
