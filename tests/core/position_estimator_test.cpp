#include "core/position_estimator.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"
#include "util/angle.h"

namespace vihot::core {
namespace {

TEST(PositionEstimatorTest, PicksExactFingerprint) {
  const CsiProfile profile = testing::synthetic_profile(5);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const PositionEstimate e = PositionEstimator::estimate(
        profile, profile.positions[i].fingerprint_phase);
    ASSERT_TRUE(e.valid);
    EXPECT_EQ(e.profile_slot, i);
    EXPECT_NEAR(e.fingerprint_error_rad, 0.0, 1e-12);
  }
}

TEST(PositionEstimatorTest, PicksNearestForOffFingerprintPhase) {
  const CsiProfile profile = testing::synthetic_profile(5);
  // Fingerprints are -0.4, -0.2, 0.0, 0.2, 0.4; phase 0.13 is nearest 0.2.
  const PositionEstimate e = PositionEstimator::estimate(profile, 0.13);
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.profile_slot, 3u);
  EXPECT_NEAR(e.fingerprint_error_rad, 0.07, 1e-9);
}

TEST(PositionEstimatorTest, UsesCircularDistance) {
  CsiProfile profile;
  profile.sample_rate_hz = 200.0;
  PositionProfile a = testing::synthetic_position(0, 3.0);
  PositionProfile b = testing::synthetic_position(1, -0.5);
  profile.positions = {a, b};
  // Phase -3.1 is circularly close to +3.0 (distance ~0.18), far from
  // -0.5 (distance 2.6).
  const PositionEstimate e = PositionEstimator::estimate(profile, -3.1);
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.profile_slot, 0u);
}

TEST(PositionEstimatorTest, EmptyProfileInvalid) {
  const CsiProfile profile;
  EXPECT_FALSE(PositionEstimator::estimate(profile, 0.0).valid);
}

TEST(PositionEstimatorTest, ReportsThePositionsOwnLabel) {
  CsiProfile profile = testing::synthetic_profile(3);
  profile.positions[2].position_index = 77;  // arbitrary external label
  const PositionEstimate e = PositionEstimator::estimate(
      profile, profile.positions[2].fingerprint_phase);
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.position_index, 77u);
}

TEST(PositionEstimatorTest, SimulatedProfileFingerprints) {
  // Against the real simulated profile: looking up each stored
  // fingerprint recovers its own slot (Eq. 4 self-consistency).
  const CsiProfile& profile = testing::simulated_profile();
  ASSERT_GE(profile.size(), 8u);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const PositionEstimate e = PositionEstimator::estimate(
        profile, profile.positions[i].fingerprint_phase);
    if (e.valid && e.profile_slot == i) ++hits;
  }
  // Distinct fingerprints may collide at the resolution of the channel;
  // most slots must self-identify.
  EXPECT_GE(hits, profile.size() - 2);
}

}  // namespace
}  // namespace vihot::core
