#include "core/profile_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "tests/core/test_helpers.h"

namespace vihot::core {
namespace {

class ProfileIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Per-test file name: ctest -jN runs cases of this fixture in
  // parallel processes, and a shared path races.
  std::string path_ =
      ::testing::TempDir() + "vihot_profile_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".txt";
};

TEST_F(ProfileIoTest, RoundTripSynthetic) {
  const CsiProfile original = testing::synthetic_profile(4);
  ASSERT_TRUE(save_profile(path_, original));
  const auto loaded = load_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_DOUBLE_EQ(loaded->sample_rate_hz, original.sample_rate_hz);
  EXPECT_DOUBLE_EQ(loaded->reference_phase, original.reference_phase);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const PositionProfile& a = original.positions[i];
    const PositionProfile& b = loaded->positions[i];
    EXPECT_EQ(a.position_index, b.position_index);
    EXPECT_NEAR(a.fingerprint_phase, b.fingerprint_phase, 1e-9);
    ASSERT_EQ(a.csi.size(), b.csi.size());
    for (std::size_t k = 0; k < a.csi.size(); k += 97) {
      EXPECT_NEAR(a.csi.values[k], b.csi.values[k], 1e-9);
      EXPECT_NEAR(a.orientation.values[k], b.orientation.values[k], 1e-9);
    }
  }
}

TEST_F(ProfileIoTest, RoundTripSimulatedProfileTracks) {
  // The acid test: a profile saved and reloaded must drive the tracker
  // identically to the original.
  const CsiProfile& original = testing::simulated_profile();
  ASSERT_TRUE(save_profile(path_, original));
  const auto loaded = load_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  // Relative phases agree to text-format precision everywhere.
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original.positions[i].csi.values[500],
                loaded->positions[i].csi.values[500], 1e-9);
  }
}

TEST_F(ProfileIoTest, MissingFile) {
  EXPECT_FALSE(load_profile("/nonexistent/profile.txt").has_value());
}

TEST_F(ProfileIoTest, RejectsWrongMagic) {
  std::ofstream os(path_);
  os << "# not a profile\n";
  os.close();
  EXPECT_FALSE(load_profile(path_).has_value());
}

TEST_F(ProfileIoTest, RejectsTruncatedSamples) {
  const CsiProfile original = testing::synthetic_profile(1);
  ASSERT_TRUE(save_profile(path_, original));
  // Chop the file in half.
  std::ifstream in(path_);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::trunc);
  out << all.substr(0, all.size() / 2);
  out.close();
  EXPECT_FALSE(load_profile(path_).has_value());
}

TEST_F(ProfileIoTest, EmptyProfileRoundTrips) {
  ASSERT_TRUE(save_profile(path_, CsiProfile{}));
  const auto loaded = load_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(ProfileIoTest, RoundTripIsBitExact) {
  // max_digits10 serialization: awkward doubles (denormals, huge
  // magnitudes, negative zero) must reload as the same bit patterns,
  // not 12-digit approximations.
  const double awkward[] = {0.1,     1.0 / 3.0, 3e-310, -3e-310,
                            1.7e308, -0.0,      5e-324, 2.2250738585072014e-308};
  CsiProfile original;
  original.sample_rate_hz = 1.0 / 3.0;
  original.reference_phase = -3e-310;
  PositionProfile pos;
  pos.position_index = 0;
  pos.fingerprint_phase = 5e-324;
  pos.csi.t0 = 0.1;
  pos.csi.dt = 1.0 / 200.0;
  pos.orientation.t0 = pos.csi.t0;
  pos.orientation.dt = pos.csi.dt;
  for (const double v : awkward) {
    pos.csi.values.push_back(v);
    pos.orientation.values.push_back(-v);
  }
  original.positions.push_back(pos);

  ASSERT_TRUE(save_profile(path_, original));
  const auto loaded = load_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->positions.size(), 1u);
  const auto bits = [](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  EXPECT_EQ(bits(loaded->sample_rate_hz), bits(original.sample_rate_hz));
  EXPECT_EQ(bits(loaded->reference_phase), bits(original.reference_phase));
  EXPECT_EQ(bits(loaded->positions[0].fingerprint_phase),
            bits(pos.fingerprint_phase));
  ASSERT_EQ(loaded->positions[0].csi.size(), pos.csi.size());
  for (std::size_t k = 0; k < pos.csi.size(); ++k) {
    EXPECT_EQ(bits(loaded->positions[0].csi.values[k]),
              bits(pos.csi.values[k]))
        << "csi sample " << k;
    EXPECT_EQ(bits(loaded->positions[0].orientation.values[k]),
              bits(pos.orientation.values[k]))
        << "orientation sample " << k;
  }
}

TEST_F(ProfileIoTest, RejectsGarbageHeaderValues) {
  // std::stod would have thrown on these; the loader must return
  // nullopt instead.
  const char* bad_headers[] = {
      "# vihot-profile v1 rate=abc reference=0 positions=0\n",
      "# vihot-profile v1 rate= reference=0 positions=0\n",
      "# vihot-profile v1 rate=200 reference=nope positions=0\n",
      "# vihot-profile v1 rate=200 reference=0 positions=\n",
      "# vihot-profile v1 rate=200 reference=0\n",
      "# vihot-profile v1 rate=200 reference=0 positions=99999999999\n",
  };
  for (const char* header : bad_headers) {
    {
      std::ofstream os(path_, std::ios::trunc);
      os << header;
    }
    EXPECT_FALSE(load_profile(path_).has_value()) << header;
  }
}

TEST_F(ProfileIoTest, RejectsWrongShapeBody) {
  const char* bad_bodies[] = {
      // Sample row where a position line should be.
      "0.5,0.25\n",
      // Position line whose declared sample count is absurd (must not
      // reserve gigabytes).
      "position 0 fingerprint 0.1 t0 0 dt 0.005 samples 99999999999\n",
      // Malformed position line (missing keywords).
      "position 0 0.1 0 0.005 4\n",
      // Declared one sample but the row is not "phi,theta".
      "position 0 fingerprint 0.1 t0 0 dt 0.005 samples 1\n0.5;0.25\n",
      // Declared one sample, row missing entirely.
      "position 0 fingerprint 0.1 t0 0 dt 0.005 samples 1\n",
  };
  for (const char* body : bad_bodies) {
    {
      std::ofstream os(path_, std::ios::trunc);
      os << "# vihot-profile v1 rate=200 reference=0 positions=1\n" << body;
    }
    EXPECT_FALSE(load_profile(path_).has_value()) << body;
  }
}

TEST_F(ProfileIoTest, RejectsPositionCountMismatch) {
  {
    std::ofstream os(path_, std::ios::trunc);
    os << "# vihot-profile v1 rate=200 reference=0 positions=2\n"
       << "position 0 fingerprint 0.1 t0 0 dt 0.005 samples 1\n"
       << "0.5,0.25\n";
  }
  EXPECT_FALSE(load_profile(path_).has_value());
}

}  // namespace
}  // namespace vihot::core
