#include "core/profile_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tests/core/test_helpers.h"

namespace vihot::core {
namespace {

class ProfileIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "vihot_profile_test.txt";
};

TEST_F(ProfileIoTest, RoundTripSynthetic) {
  const CsiProfile original = testing::synthetic_profile(4);
  ASSERT_TRUE(save_profile(path_, original));
  const auto loaded = load_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_DOUBLE_EQ(loaded->sample_rate_hz, original.sample_rate_hz);
  EXPECT_DOUBLE_EQ(loaded->reference_phase, original.reference_phase);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const PositionProfile& a = original.positions[i];
    const PositionProfile& b = loaded->positions[i];
    EXPECT_EQ(a.position_index, b.position_index);
    EXPECT_NEAR(a.fingerprint_phase, b.fingerprint_phase, 1e-9);
    ASSERT_EQ(a.csi.size(), b.csi.size());
    for (std::size_t k = 0; k < a.csi.size(); k += 97) {
      EXPECT_NEAR(a.csi.values[k], b.csi.values[k], 1e-9);
      EXPECT_NEAR(a.orientation.values[k], b.orientation.values[k], 1e-9);
    }
  }
}

TEST_F(ProfileIoTest, RoundTripSimulatedProfileTracks) {
  // The acid test: a profile saved and reloaded must drive the tracker
  // identically to the original.
  const CsiProfile& original = testing::simulated_profile();
  ASSERT_TRUE(save_profile(path_, original));
  const auto loaded = load_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  // Relative phases agree to text-format precision everywhere.
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original.positions[i].csi.values[500],
                loaded->positions[i].csi.values[500], 1e-9);
  }
}

TEST_F(ProfileIoTest, MissingFile) {
  EXPECT_FALSE(load_profile("/nonexistent/profile.txt").has_value());
}

TEST_F(ProfileIoTest, RejectsWrongMagic) {
  std::ofstream os(path_);
  os << "# not a profile\n";
  os.close();
  EXPECT_FALSE(load_profile(path_).has_value());
}

TEST_F(ProfileIoTest, RejectsTruncatedSamples) {
  const CsiProfile original = testing::synthetic_profile(1);
  ASSERT_TRUE(save_profile(path_, original));
  // Chop the file in half.
  std::ifstream in(path_);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::trunc);
  out << all.substr(0, all.size() / 2);
  out.close();
  EXPECT_FALSE(load_profile(path_).has_value());
}

TEST_F(ProfileIoTest, EmptyProfileRoundTrips) {
  ASSERT_TRUE(save_profile(path_, CsiProfile{}));
  const auto loaded = load_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace vihot::core
