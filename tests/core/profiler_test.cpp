#include "core/profiler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/core/test_helpers.h"
#include "util/angle.h"

namespace vihot::core {
namespace {

TEST(ProfilerTest, SimulatedProfileHasAllPositions) {
  const CsiProfile& profile = testing::simulated_profile();
  EXPECT_EQ(profile.size(), testing::fast_scenario().num_positions);
  EXPECT_DOUBLE_EQ(profile.sample_rate_hz, 200.0);
}

TEST(ProfilerTest, SeriesShareTheGrid) {
  const CsiProfile& profile = testing::simulated_profile();
  for (const PositionProfile& p : profile.positions) {
    ASSERT_EQ(p.csi.size(), p.orientation.size());
    EXPECT_DOUBLE_EQ(p.csi.t0, p.orientation.t0);
    EXPECT_DOUBLE_EQ(p.csi.dt, p.orientation.dt);
    EXPECT_GT(p.csi.size(), 1000u);  // ~9.5 s at 200 Hz
  }
}

TEST(ProfilerTest, OrientationSeriesCoversTheSweep) {
  const CsiProfile& profile = testing::simulated_profile();
  for (const PositionProfile& p : profile.positions) {
    double lo = 1e9;
    double hi = -1e9;
    for (const double th : p.orientation.values) {
      lo = std::min(lo, th);
      hi = std::max(hi, th);
    }
    EXPECT_LT(lo, util::deg_to_rad(-80.0));
    EXPECT_GT(hi, util::deg_to_rad(80.0));
  }
}

TEST(ProfilerTest, FingerprintsAnchoredNearZero) {
  // The reference phase is the middle session's fingerprint, so the
  // middle position's relative fingerprint must be ~0 and all values sit
  // far from the wrap boundary.
  const CsiProfile& profile = testing::simulated_profile();
  const std::size_t mid = profile.size() / 2;
  EXPECT_NEAR(profile.positions[mid].fingerprint_phase, 0.0, 0.05);
  for (const PositionProfile& p : profile.positions) {
    EXPECT_LT(std::abs(p.fingerprint_phase), 2.0);
  }
}

TEST(ProfilerTest, StoredPhasesAwayFromWrapBoundary) {
  const CsiProfile& profile = testing::simulated_profile();
  for (const PositionProfile& p : profile.positions) {
    for (const double v : p.csi.values) {
      EXPECT_LT(std::abs(v), 3.1);
    }
  }
}

TEST(ProfilerTest, RelativePhaseWraps) {
  CsiProfile profile;
  profile.reference_phase = 3.0;
  // 3.0 - (-3.0) = 6.0 -> wrapped to 6.0 - 2*pi ~ -0.28.
  EXPECT_NEAR(profile.relative_phase(-3.0), -3.0 - 3.0 + util::kTwoPi,
              1e-9);
  EXPECT_NEAR(profile.relative_phase(3.0), 0.0, 1e-12);
}

TEST(ProfilerTest, SkipsSessionsWithoutStableFingerprint) {
  // A session whose ground truth never pauses near 0 deg cannot be
  // fingerprinted and must be dropped.
  JointProfiler profiler;
  ProfilingSession session;
  session.position_index = 0;
  // CSI frames with 2 antennas / 30 subcarriers of dummy data.
  for (int i = 0; i < 500; ++i) {
    wifi::CsiMeasurement m;
    m.t = 0.002 * i;
    m.h[0].assign(30, {1.0, 0.0});
    m.h[1].assign(30, {1.0, 0.0});
    session.csi.push_back(m);
    // Ground truth: fast continuous spin, never stable near zero.
    session.orientation_truth.push(m.t, 5.0 * m.t + 0.5);
  }
  const CsiProfile profile =
      profiler.build(std::vector<ProfilingSession>{session});
  EXPECT_TRUE(profile.empty());
}

TEST(ProfilerTest, EmptyInputGivesEmptyProfile) {
  JointProfiler profiler;
  EXPECT_TRUE(profiler.build({}).empty());
}

namespace {

// A synthetic profiling session whose sanitized phase is exactly
// level + 0.8*sin(theta): hold at theta=0 for 1.5 s, then sweep.
ProfilingSession synthetic_session(std::size_t index, double level) {
  ProfilingSession session;
  session.position_index = index;
  for (int i = 0; i < 2500; ++i) {
    const double t = 0.004 * i;
    const double theta =
        t < 1.5 ? 0.0 : std::sin(0.8 * (t - 1.5));  // slow sweep
    const double phi = level + 0.8 * std::sin(theta);
    wifi::CsiMeasurement m;
    m.t = t;
    m.h[0].assign(30, std::polar(1.0, phi));
    m.h[1].assign(30, {1.0, 0.0});  // phase difference == phi
    session.csi.push_back(std::move(m));
    session.orientation_truth.push(t, theta);
  }
  return session;
}

}  // namespace

TEST(ProfilerTest, UpdateReplacesNearestAndAppendsNew) {
  JointProfiler profiler;
  std::vector<ProfilingSession> sessions;
  sessions.push_back(synthetic_session(0, 0.2));
  sessions.push_back(synthetic_session(1, 0.6));
  const CsiProfile base = profiler.build(sessions);
  ASSERT_EQ(base.size(), 2u);

  // A re-profiled trace near position 0 replaces it...
  const CsiProfile replaced = profiler.update(
      base, std::vector<ProfilingSession>{synthetic_session(7, 0.23)});
  ASSERT_EQ(replaced.size(), 2u);
  EXPECT_DOUBLE_EQ(replaced.reference_phase, base.reference_phase);
  // ...and carries the new session's label.
  const bool has_new_label =
      replaced.positions[0].position_index == 7 ||
      replaced.positions[1].position_index == 7;
  EXPECT_TRUE(has_new_label);

  // A trace at a genuinely new lean level is appended.
  const CsiProfile grown = profiler.update(
      base, std::vector<ProfilingSession>{synthetic_session(8, 1.2)});
  EXPECT_EQ(grown.size(), 3u);
}

TEST(ProfilerTest, UpdateNoOpKeepsProfile) {
  const CsiProfile& base = testing::simulated_profile();
  JointProfiler profiler;
  const CsiProfile same = profiler.update(base, {});
  EXPECT_EQ(same.size(), base.size());
  EXPECT_DOUBLE_EQ(same.reference_phase, base.reference_phase);
}

TEST(ProfilerTest, UpdateOnEmptyProfileBuilds) {
  JointProfiler profiler;
  const CsiProfile out = profiler.update(CsiProfile{}, {});
  EXPECT_TRUE(out.empty());
}

TEST(ProfilerTest, UpdateSkipsUnfingerprintableSessions) {
  const CsiProfile& base = testing::simulated_profile();
  JointProfiler profiler;
  ProfilingSession bad;
  bad.position_index = 99;
  for (int i = 0; i < 500; ++i) {
    wifi::CsiMeasurement m;
    m.t = 0.002 * i;
    m.h[0].assign(30, {1.0, 0.0});
    m.h[1].assign(30, {1.0, 0.0});
    bad.csi.push_back(m);
    bad.orientation_truth.push(m.t, 5.0 * m.t + 0.5);  // never stable at 0
  }
  const CsiProfile out =
      profiler.update(base, std::vector<ProfilingSession>{bad});
  EXPECT_EQ(out.size(), base.size());
}

TEST(ProfilerTest, ProfilingIsFast) {
  // Sec. 3.3: the whole profiling pass takes under 100 s of driver time.
  const sim::ScenarioConfig& cfg = testing::fast_scenario();
  const double total = static_cast<double>(cfg.num_positions) *
                       (cfg.profiling_hold_s + cfg.profiling_sweep_s);
  EXPECT_LT(total, 100.0);
}

}  // namespace
}  // namespace vihot::core
