#include "core/sanitizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "channel/cabin.h"
#include "obs/sink.h"
#include "channel/csi_synth.h"
#include "util/angle.h"
#include "util/stats.h"
#include "wifi/link.h"

namespace vihot::core {
namespace {

class SanitizerTest : public ::testing::Test {
 protected:
  channel::CabinScene scene_ = channel::make_cabin_scene();
  channel::ChannelModel model_{scene_, channel::SubcarrierGrid{},
                               channel::HeadScatterModel{}};

  channel::CabinState state(double theta) const {
    channel::CabinState st;
    st.head.position = scene_.driver_head_center;
    st.head.theta = theta;
    return st;
  }
};

TEST_F(SanitizerTest, CancelsCfoSfoAcrossFrames) {
  // The headline property of Sec. 3.2: with the antenna difference, the
  // per-frame CFO scrambling disappears and the phase becomes a stable
  // function of geometry.
  wifi::WifiLink link(model_, wifi::NoiseConfig{}, wifi::SchedulerConfig{},
                      util::Rng(1));
  const CsiSanitizer sanitizer;
  std::vector<double> phases;
  for (int i = 0; i < 100; ++i) {
    phases.push_back(sanitizer.phase(link.measure(0.002 * i, state(0.2))));
  }
  EXPECT_LT(util::stddev(phases), 0.02);
}

TEST_F(SanitizerTest, AblationRawPhaseIsUseless) {
  // Without the antenna difference, the CFO dominates: frame-to-frame
  // phase is near-uniform noise.
  wifi::WifiLink link(model_, wifi::NoiseConfig{}, wifi::SchedulerConfig{},
                      util::Rng(2));
  SanitizerConfig cfg;
  cfg.antenna_difference = false;
  const CsiSanitizer raw(cfg);
  std::vector<double> phases;
  for (int i = 0; i < 200; ++i) {
    phases.push_back(raw.phase(link.measure(0.002 * i, state(0.2))));
  }
  // Spread comparable to a uniform distribution over (-pi, pi].
  EXPECT_GT(util::stddev(phases), 1.0);
}

TEST_F(SanitizerTest, SubcarrierAveragingReducesNoise) {
  wifi::NoiseConfig noisy;
  noisy.thermal_std = 0.05;
  wifi::WifiLink link_avg(model_, noisy, wifi::SchedulerConfig{},
                          util::Rng(3));
  wifi::WifiLink link_single(model_, noisy, wifi::SchedulerConfig{},
                             util::Rng(3));
  SanitizerConfig single_cfg;
  single_cfg.subcarrier_average = false;
  const CsiSanitizer averaged;
  const CsiSanitizer single(single_cfg);
  std::vector<double> avg_phases;
  std::vector<double> single_phases;
  for (int i = 0; i < 300; ++i) {
    avg_phases.push_back(
        averaged.phase(link_avg.measure(0.002 * i, state(0.2))));
    single_phases.push_back(
        single.phase(link_single.measure(0.002 * i, state(0.2))));
  }
  EXPECT_LT(util::stddev(avg_phases), 0.6 * util::stddev(single_phases));
}

TEST_F(SanitizerTest, PhaseIsInPrincipalInterval) {
  wifi::WifiLink link(model_, wifi::NoiseConfig{}, wifi::SchedulerConfig{},
                      util::Rng(4));
  const CsiSanitizer sanitizer;
  for (int k = -90; k <= 90; k += 10) {
    const double phi = sanitizer.phase(
        link.measure(0.0, state(util::deg_to_rad(k))));
    EXPECT_GT(phi, -util::kPi - 1e-12);
    EXPECT_LE(phi, util::kPi + 1e-12);
  }
}

TEST_F(SanitizerTest, PhaseSeriesPreservesTimestamps) {
  wifi::WifiLink link(model_, wifi::NoiseConfig{}, wifi::SchedulerConfig{},
                      util::Rng(5));
  const auto capture =
      link.capture(0.0, 1.0, [&](double) { return state(0.0); });
  const CsiSanitizer sanitizer;
  const util::TimeSeries series = sanitizer.phase_series(capture);
  ASSERT_EQ(series.size(), capture.size());
  for (std::size_t i = 0; i < capture.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i].t, capture[i].t);
  }
}

TEST_F(SanitizerTest, EmptyMeasurementGivesZero) {
  wifi::CsiMeasurement m;
  m.h[0] = {};
  m.h[1] = {};
  EXPECT_DOUBLE_EQ(CsiSanitizer{}.phase(m), 0.0);
}

TEST_F(SanitizerTest, RxNullSuppressesPassengerMotion) {
  // Sec. 7 extension: when the phone cannot aim its pattern null at the
  // passenger (omnidirectional TX here), the RX-beamforming null takes
  // over: the sanitized phase barely moves when the passenger turns.
  channel::CabinScene scene = channel::make_cabin_scene();
  scene.tx_pattern_floor = 1.0;  // flat-mounted phone: no hardware null
  const channel::ChannelModel model(scene, channel::SubcarrierGrid{},
                                    channel::HeadScatterModel{});
  SanitizerConfig null_cfg;
  null_cfg.rx_null_ratio =
      channel::passenger_null_ratio(scene, model.grid());
  const CsiSanitizer standard;
  const CsiSanitizer nulled(null_cfg);

  const auto measure = [&](double passenger_theta) {
    channel::CabinState st;
    st.head.position = scene.driver_head_center;
    st.passenger_present = true;
    st.passenger_theta = passenger_theta;
    const channel::CsiMatrix H = model.csi(st);
    wifi::CsiMeasurement m;
    m.h = H.h;
    return m;
  };
  double std_dev = 0.0;
  double null_dev = 0.0;
  for (double pt = -1.0; pt <= 1.0; pt += 0.1) {
    std_dev = std::max(std_dev,
                       std::abs(standard.phase(measure(pt)) -
                                standard.phase(measure(0.0))));
    null_dev = std::max(null_dev,
                        std::abs(nulled.phase(measure(pt)) -
                                 nulled.phase(measure(0.0))));
  }
  EXPECT_GT(std_dev, 3.0 * null_dev);
  // And the nulled sanitizer still sees the driver's head: its phase
  // swing over the head sweep stays far above the thermal-noise floor
  // (the null costs sensitivity — weaker swing than the standard
  // sanitizer — but does not erase the signal).
  const auto head_at = [&](double theta) {
    channel::CabinState st;
    st.head.position = scene.driver_head_center;
    st.head.theta = theta;
    const channel::CsiMatrix H = model.csi(st);
    wifi::CsiMeasurement m;
    m.h = H.h;
    return m;
  };
  double head_swing = 0.0;
  for (double th = -1.2; th <= 1.2; th += 0.2) {
    head_swing = std::max(head_swing,
                          std::abs(nulled.phase(head_at(th)) -
                                   nulled.phase(head_at(0.0))));
  }
  EXPECT_GT(head_swing, 0.08);
}

TEST_F(SanitizerTest, SingleAntennaFrameDegradesInsteadOfCrashing) {
  // Regression: phase() indexed m.h[1] unchecked, so a frame carrying
  // fewer reference-antenna subcarriers than primary ones read out of
  // bounds. Such frames must degrade to the raw antenna-0 path (as if
  // antenna_difference were off) and be counted, not crash.
  wifi::CsiMeasurement m;
  m.h[0].assign(4, std::polar(1.0, 0.7));
  m.h[1] = {};  // reference antenna missing entirely
  obs::TrackerStats stats;
  CsiSanitizer sanitizer;
  sanitizer.set_stats(&stats);
  EXPECT_DOUBLE_EQ(sanitizer.sanitize(m), 0.7);
  EXPECT_EQ(stats.sanitizer_antenna_degraded.value(), 1u);

  // Short reference antenna (fewer subcarriers than h[0]): same path.
  m.h[1].assign(2, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(sanitizer.sanitize(m), 0.7);
  EXPECT_EQ(stats.sanitizer_antenna_degraded.value(), 2u);

  // A full-rank frame goes back to the antenna-difference path and does
  // not bump the counter.
  m.h[1].assign(4, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(sanitizer.sanitize(m), 0.7);
  EXPECT_EQ(stats.sanitizer_antenna_degraded.value(), 2u);

  // Without a stats sink the degraded path still must not crash.
  CsiSanitizer plain;
  m.h[1] = {};
  EXPECT_DOUBLE_EQ(plain.phase(m), 0.7);
}

TEST_F(SanitizerTest, TracksOrientationChanges) {
  wifi::WifiLink link(model_, wifi::NoiseConfig{}, wifi::SchedulerConfig{},
                      util::Rng(6));
  const CsiSanitizer sanitizer;
  const double p1 = sanitizer.phase(link.measure(0.0, state(-0.5)));
  const double p2 = sanitizer.phase(link.measure(0.002, state(0.5)));
  EXPECT_GT(std::abs(p1 - p2), 0.1);
}

}  // namespace
}  // namespace vihot::core
