#include "core/stability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace vihot::core {
namespace {

TEST(StabilityTest, FlatStreamBecomesStable) {
  StablePhaseDetector det;
  util::Rng rng(1);
  bool stable = false;
  for (double t = 0.0; t < 3.0; t += 0.002) {
    stable = det.update(t, 0.5 + rng.normal(0.0, 0.005));
  }
  EXPECT_TRUE(stable);
  EXPECT_NEAR(det.stable_phase(), 0.5, 0.01);
}

TEST(StabilityTest, NeedsFullWindowFirst) {
  StablePhaseDetector::Config cfg;
  cfg.window_s = 1.2;
  StablePhaseDetector det(cfg);
  // Only 0.5 s of perfectly flat data: not enough time span yet.
  bool stable = false;
  for (double t = 0.0; t < 0.5; t += 0.002) {
    stable = det.update(t, 0.0);
  }
  EXPECT_FALSE(stable);
}

TEST(StabilityTest, HeadTurnBreaksStability) {
  StablePhaseDetector det;
  for (double t = 0.0; t < 2.0; t += 0.002) det.update(t, 0.1);
  EXPECT_TRUE(det.is_stable());
  // A head turn swings the phase by ~1 rad within 100 ms.
  bool stable = true;
  for (double t = 2.0; t < 2.1; t += 0.002) {
    stable = det.update(t, 0.1 + 10.0 * (t - 2.0));
  }
  EXPECT_FALSE(stable);
}

TEST(StabilityTest, RecoversAfterTurnEnds) {
  StablePhaseDetector det;
  for (double t = 0.0; t < 2.0; t += 0.002) det.update(t, 0.0);
  for (double t = 2.0; t < 2.5; t += 0.002) {
    det.update(t, std::sin(20.0 * (t - 2.0)));
  }
  EXPECT_FALSE(det.is_stable());
  // Settle at a new level: stable again after a full window.
  bool stable = false;
  for (double t = 2.5; t < 5.0; t += 0.002) {
    stable = det.update(t, 0.3);
  }
  EXPECT_TRUE(stable);
  EXPECT_NEAR(det.stable_phase(), 0.3, 0.01);
}

TEST(StabilityTest, SpreadThresholdIsRespected) {
  StablePhaseDetector::Config cfg;
  cfg.max_spread_rad = 0.08;
  StablePhaseDetector det(cfg);
  // Oscillation with peak-to-peak exactly above the threshold.
  bool stable = true;
  for (double t = 0.0; t < 3.0; t += 0.002) {
    stable = det.update(t, 0.05 * std::sin(3.0 * t));
  }
  EXPECT_FALSE(stable);  // p2p = 0.10 > 0.08
}

TEST(StabilityTest, MinSamplesGuard) {
  StablePhaseDetector::Config cfg;
  cfg.min_samples = 30;
  StablePhaseDetector det(cfg);
  // Sparse updates (one per 0.2 s): the window never holds 30 samples.
  bool stable = false;
  for (double t = 0.0; t < 5.0; t += 0.2) {
    stable = det.update(t, 0.0);
  }
  EXPECT_FALSE(stable);
}

TEST(StabilityTest, ResetClearsState) {
  StablePhaseDetector det;
  for (double t = 0.0; t < 3.0; t += 0.002) det.update(t, 0.0);
  EXPECT_TRUE(det.is_stable());
  det.reset();
  EXPECT_FALSE(det.is_stable());
}

}  // namespace
}  // namespace vihot::core
