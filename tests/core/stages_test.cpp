// Direct unit tests for the staged tracker pipeline: each stage is
// exercised in isolation, with inputs the slimmed ViHotTracker would
// hand it. tracker_test.cpp covers the composed behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mode_arbiter.h"
#include "core/relock_policy.h"
#include "core/slot_matcher.h"
#include "core/tie_breaker.h"
#include "core/window_analyzer.h"
#include "obs/sink.h"
#include "tests/core/test_helpers.h"
#include "util/rng.h"

namespace vihot::core {
namespace {

// ---------------------------------------------------------------- stage 1

camera::CameraTracker::Estimate camera_estimate(double t, double theta,
                                                bool valid = true) {
  camera::CameraTracker::Estimate e;
  e.t = t;
  e.theta = theta;
  e.valid = valid;
  return e;
}

TEST(ModeArbiterTest, StartsInCsiAndSwitchesOnSteering) {
  ModeArbiter arbiter({}, /*camera_staleness_s=*/0.4);
  EXPECT_EQ(arbiter.mode(), TrackingMode::kCsi);

  // A hard intersection turn: well above the detector threshold.
  for (double t = 0.0; t < 0.5; t += 0.01) {
    arbiter.push_imu({t, /*gyro_yaw_rad_s=*/0.4, 0.0});
  }
  EXPECT_EQ(arbiter.mode(), TrackingMode::kCameraFallback);

  // Straight road again: verdict releases after the hold-off.
  for (double t = 0.5; t < 3.0; t += 0.01) {
    arbiter.push_imu({t, 0.0, 0.0});
  }
  EXPECT_EQ(arbiter.mode(), TrackingMode::kCsi);
}

TEST(ModeArbiterTest, CameraOutputHonorsStaleness) {
  ModeArbiter arbiter({}, /*camera_staleness_s=*/0.4);
  // No camera estimate cached yet.
  EXPECT_FALSE(arbiter.camera_output(1.0).valid);

  arbiter.push_camera(camera_estimate(1.0, 0.3));
  const ModeArbiter::CameraDecision fresh = arbiter.camera_output(1.2);
  EXPECT_TRUE(fresh.valid);
  EXPECT_DOUBLE_EQ(fresh.theta_rad, 0.3);

  // The same estimate is too old half a second later.
  EXPECT_FALSE(arbiter.camera_output(1.5).valid);
}

TEST(ModeArbiterTest, DropsLostTrackFrames) {
  ModeArbiter arbiter({}, /*camera_staleness_s=*/0.4);
  arbiter.push_camera(camera_estimate(1.0, 0.3));
  // A lost-track frame must not overwrite the cached good estimate.
  arbiter.push_camera(camera_estimate(1.2, 9.9, /*valid=*/false));
  const ModeArbiter::CameraDecision out = arbiter.camera_output(1.3);
  ASSERT_TRUE(out.valid);
  EXPECT_DOUBLE_EQ(out.theta_rad, 0.3);
}

TEST(ModeArbiterTest, CountsFallbackTransitionsAndServes) {
  obs::TrackerStats stats;
  ModeArbiter arbiter({}, /*camera_staleness_s=*/0.4);
  arbiter.set_stats(&stats);

  // One steering event = exactly one engage, however many samples it
  // spans.
  for (double t = 0.0; t < 0.5; t += 0.01) {
    arbiter.push_imu({t, 0.4, 0.0});
  }
  ASSERT_EQ(arbiter.mode(), TrackingMode::kCameraFallback);
  EXPECT_EQ(stats.fallback_engaged.value(), 1u);

  // No camera estimate cached: the fallback tick is stale.
  (void)arbiter.camera_output(0.5);
  EXPECT_EQ(stats.fallback_stale.value(), 1u);
  EXPECT_EQ(stats.fallback_served.value(), 0u);
  arbiter.push_camera(camera_estimate(0.5, 0.3));
  (void)arbiter.camera_output(0.6);
  EXPECT_EQ(stats.fallback_served.value(), 1u);

  // Recover, then a second event: engage count goes to exactly 2.
  for (double t = 0.5; t < 3.0; t += 0.01) arbiter.push_imu({t, 0.0, 0.0});
  ASSERT_EQ(arbiter.mode(), TrackingMode::kCsi);
  for (double t = 3.0; t < 3.5; t += 0.01) arbiter.push_imu({t, 0.4, 0.0});
  EXPECT_EQ(stats.fallback_engaged.value(), 2u);
}

// ---------------------------------------------------------------- stage 2

util::TimeSeries ramp_series(double t0, double t1, double level,
                             double slope) {
  util::TimeSeries out;
  for (double t = t0; t < t1; t += 0.005) {
    out.push(t, level + slope * (t - t0));
  }
  return out;
}

TEST(WindowAnalyzerTest, UncoveredWindowIsHinted) {
  const WindowAnalyzer analyzer({0.1, 0.05, 0.30});
  const util::TimeSeries empty;
  WindowAnalyzer::Analysis a = analyzer.analyze(empty, 1.0, true);
  EXPECT_LT(a.spread_rad, 0.0);
  EXPECT_EQ(a.regime, WindowRegime::kHinted);

  // Buffer exists but starts inside the window: still not covered.
  const util::TimeSeries partial = ramp_series(0.95, 1.0, 0.0, 0.0);
  a = analyzer.analyze(partial, 1.0, true);
  EXPECT_LT(a.spread_rad, 0.0);
  EXPECT_EQ(a.regime, WindowRegime::kHinted);
}

TEST(WindowAnalyzerTest, FlatRequiresPreviousOutput) {
  const WindowAnalyzer analyzer({0.1, 0.05, 0.30});
  const util::TimeSeries flat = ramp_series(0.0, 1.0, 0.7, 0.01);
  EXPECT_EQ(analyzer.analyze(flat, 1.0, true).regime, WindowRegime::kFlat);
  // With nothing to hold, a flat window still goes to the matcher.
  EXPECT_EQ(analyzer.analyze(flat, 1.0, false).regime,
            WindowRegime::kHinted);
}

TEST(WindowAnalyzerTest, SpreadSelectsRegime) {
  const WindowAnalyzer analyzer({0.1, 0.05, 0.30});
  // Spread over the last 100 ms = slope * 0.1.
  const util::TimeSeries medium = ramp_series(0.0, 1.0, 0.0, 1.5);
  const WindowAnalyzer::Analysis mid = analyzer.analyze(medium, 1.0, true);
  EXPECT_NEAR(mid.spread_rad, 0.15, 0.02);
  EXPECT_EQ(mid.regime, WindowRegime::kHinted);

  const util::TimeSeries fast = ramp_series(0.0, 1.0, 0.0, 5.0);
  const WindowAnalyzer::Analysis hi = analyzer.analyze(fast, 1.0, true);
  EXPECT_GT(hi.spread_rad, 0.30);
  EXPECT_EQ(hi.regime, WindowRegime::kGlobal);
}

TEST(WindowAnalyzerTest, CountsRegimesAndUncoveredWindows) {
  obs::TrackerStats stats;
  WindowAnalyzer analyzer({0.1, 0.05, 0.30});
  analyzer.set_stats(&stats);

  const util::TimeSeries empty;
  (void)analyzer.analyze(empty, 1.0, true);
  EXPECT_EQ(stats.window_uncovered.value(), 1u);
  EXPECT_EQ(stats.window_hinted.value(), 1u);

  const util::TimeSeries flat = ramp_series(0.0, 1.0, 0.7, 0.01);
  (void)analyzer.analyze(flat, 1.0, true);
  EXPECT_EQ(stats.window_flat.value(), 1u);

  const util::TimeSeries fast = ramp_series(0.0, 1.0, 0.0, 5.0);
  (void)analyzer.analyze(fast, 1.0, true);
  EXPECT_EQ(stats.window_global.value(), 1u);
  // Each call lands in exactly one regime bucket.
  EXPECT_EQ(stats.window_flat.value() + stats.window_hinted.value() +
                stats.window_global.value(),
            3u);
}

// ---------------------------------------------------------------- stage 3

// Run-time phase stream for a head following theta_fn against the
// synthetic curve of test_helpers (optionally offset by a session bias).
template <typename ThetaFn>
util::TimeSeries stream_for(ThetaFn&& theta_fn, double t0, double t1,
                            double fingerprint, double bias = 0.0) {
  util::Rng rng(17);
  util::TimeSeries out;
  for (double t = t0; t < t1; t += 0.004) {
    out.push(t, testing::synthetic_phase(theta_fn(t), fingerprint) + bias +
                    rng.normal(0.0, 0.003));
  }
  return out;
}

TEST(SlotMatcherTest, RecoversOrientationAtNominalSlot) {
  const CsiProfile profile = testing::synthetic_profile(5);
  const SlotMatcher matcher({MatcherConfig{}, 0, true, 0.0});
  const auto theta_fn = [](double t) { return -0.8 + 1.5 * (t - 1.0); };
  const util::TimeSeries stream =
      stream_for(theta_fn, 0.9, 1.6, profile.positions[2].fingerprint_phase);
  const SlotMatcher::Result r =
      matcher.match(profile, stream, 2, 1.5, nullptr, false, 0.0, {});
  ASSERT_TRUE(r.estimate.valid);
  EXPECT_EQ(r.matched_slot, 2u);
  EXPECT_NEAR(r.estimate.theta_rad, theta_fn(1.5), 0.12);
}

TEST(SlotMatcherTest, NeighborSlotWinsWhenItFitsBetter) {
  const CsiProfile profile = testing::synthetic_profile(5);
  const SlotMatcher matcher({MatcherConfig{}, 1, true, 0.0});
  const auto theta_fn = [](double t) { return -0.8 + 1.5 * (t - 1.0); };
  // The head actually sits at slot 3, but Eq. (4) localized slot 2: the
  // neighborhood search must pick the better-fitting neighbor curve.
  // Hinted tightly, like the tracker would: unconstrained (or loosely
  // constrained), the wrong slot absorbs its fingerprint offset with a
  // small theta shift along the curve slope and fits almost as well.
  const util::TimeSeries stream =
      stream_for(theta_fn, 0.9, 1.6, profile.positions[3].fingerprint_phase);
  const ContinuityHint hint{theta_fn(1.5), 0.1};
  const SlotMatcher::Result r =
      matcher.match(profile, stream, 2, 1.5, &hint, false, 0.0, {});
  ASSERT_TRUE(r.estimate.valid);
  EXPECT_EQ(r.matched_slot, 3u);
  EXPECT_NEAR(r.estimate.theta_rad, theta_fn(1.5), 0.12);
}

TEST(SlotMatcherTest, BiasCorrectionRestoresOffsetWindow) {
  const CsiProfile profile = testing::synthetic_profile(5);
  const double fp = profile.positions[2].fingerprint_phase;
  // The session's head sits between grid positions: the whole run-time
  // curve rides a constant offset relative to the slot-2 profile.
  const double session_bias = 0.25;
  const auto theta_fn = [](double t) { return -0.8 + 1.5 * (t - 1.0); };
  const util::TimeSeries stream =
      stream_for(theta_fn, 0.9, 1.6, fp, session_bias);
  const SlotMatcher::Bias bias{true, fp + session_bias};
  // Pin the search to the true branch: off-branch coincidences would
  // otherwise mask the offset this test is about.
  const ContinuityHint hint{theta_fn(1.5), 0.1};

  const SlotMatcher corrected({MatcherConfig{}, 0, true, 0.0});
  const SlotMatcher::Result with =
      corrected.match(profile, stream, 2, 1.5, &hint, false, 0.0, bias);
  ASSERT_TRUE(with.estimate.valid);
  EXPECT_NEAR(with.estimate.theta_rad, theta_fn(1.5), 0.12);

  // Same window, correction disabled: on the true branch the offset
  // curve fits decisively worse.
  const SlotMatcher uncorrected({MatcherConfig{}, 0, false, 0.0});
  const SlotMatcher::Result without =
      uncorrected.match(profile, stream, 2, 1.5, &hint, false, 0.0, bias);
  if (without.estimate.valid) {
    EXPECT_GT(without.estimate.match_distance,
              10.0 * with.estimate.match_distance);
  }
}

TEST(SlotMatcherTest, HardHintRestrictsCandidates) {
  const CsiProfile profile = testing::synthetic_profile(5);
  const SlotMatcher matcher({MatcherConfig{}, 0, true, 0.0});
  const auto theta_fn = [](double t) { return -0.8 + 1.5 * (t - 1.0); };
  const util::TimeSeries stream =
      stream_for(theta_fn, 0.9, 1.6, profile.positions[2].fingerprint_phase);
  // Hint pinned on the wrong side of the sweep with a tight deviation:
  // any surviving candidate must obey it.
  const ContinuityHint hint{0.9, 0.15};
  const SlotMatcher::Result r =
      matcher.match(profile, stream, 2, 1.5, &hint, false, 0.0, {});
  if (r.estimate.valid) {
    EXPECT_NEAR(r.estimate.theta_rad, hint.theta_rad, hint.max_dev_rad);
  }
}

TEST(SlotMatcherTest, EmptyProfileReturnsInvalid) {
  const CsiProfile empty;
  const SlotMatcher matcher;
  const util::TimeSeries stream =
      stream_for([](double) { return 0.0; }, 0.0, 1.0, 0.0);
  const SlotMatcher::Result r =
      matcher.match(empty, stream, 0, 0.9, nullptr, false, 0.0, {});
  EXPECT_FALSE(r.estimate.valid);
}

TEST(SlotMatcherTest, CountsAttemptsAndObservesMatchQuality) {
  obs::TrackerStats stats;
  const CsiProfile profile = testing::synthetic_profile(5);
  SlotMatcher matcher({MatcherConfig{}, 0, true, 0.0});
  matcher.set_stats(&stats);
  const auto theta_fn = [](double t) { return -0.8 + 1.5 * (t - 1.0); };
  const util::TimeSeries stream =
      stream_for(theta_fn, 0.9, 1.6, profile.positions[2].fingerprint_phase);

  const SlotMatcher::Result good =
      matcher.match(profile, stream, 2, 1.5, nullptr, false, 0.0, {});
  ASSERT_TRUE(good.estimate.valid);
  EXPECT_EQ(stats.match_attempts.value(), 1u);
  EXPECT_EQ(stats.match_invalid.value(), 0u);
  EXPECT_EQ(stats.dtw_best_cost.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.dtw_best_cost.max(), good.estimate.match_distance);
  EXPECT_EQ(stats.dtw_candidates.count(), 1u);

  // An uncovered stream cannot produce a candidate: attempt + invalid.
  const util::TimeSeries empty;
  const SlotMatcher::Result bad =
      matcher.match(profile, empty, 2, 1.5, nullptr, false, 0.0, {});
  EXPECT_FALSE(bad.estimate.valid);
  EXPECT_EQ(stats.match_attempts.value(), 2u);
  EXPECT_EQ(stats.match_invalid.value(), 1u);
  EXPECT_EQ(stats.dtw_best_cost.count(), 1u);

  // With a session bias engaged, its magnitude is observed.
  const SlotMatcher::Bias bias{
      true, profile.positions[2].fingerprint_phase + 0.2};
  (void)matcher.match(profile, stream, 2, 1.5, nullptr, false, 0.0, bias);
  EXPECT_EQ(stats.phase_bias_abs.count(), 1u);
  EXPECT_NEAR(stats.phase_bias_abs.max(), 0.2, 1e-9);
}

// ---------------------------------------------------------------- stage 4

OrientationEstimate match_with_distance(double distance,
                                        bool valid = true) {
  OrientationEstimate e;
  e.valid = valid;
  e.match_distance = distance;
  return e;
}

TEST(RelockPolicyTest, EscalatesWidenThenGlobal) {
  RelockPolicy policy({/*relock_distance=*/0.02, /*patience=*/2,
                       /*widen_factor=*/3.0});
  const OrientationEstimate poor = match_with_distance(0.08);

  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kWiden);
  // The widened stage failed too: next exhaustion goes global.
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kGlobal);
  // After the global stage the ladder starts over.
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kWiden);
}

TEST(RelockPolicyTest, GoodMatchResetsTheLadder) {
  RelockPolicy policy({0.02, 2, 3.0});
  const OrientationEstimate poor = match_with_distance(0.08);
  const OrientationEstimate good = match_with_distance(0.005);

  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, good), RelockPolicy::Action::kNone);
  // The streak restarts — and a good match also clears the widened stage.
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kWiden);
  EXPECT_EQ(policy.observe(true, good), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, poor), RelockPolicy::Action::kWiden);
}

TEST(RelockPolicyTest, InvalidMatchesCountAsPoor) {
  RelockPolicy policy({0.02, 2, 3.0});
  const OrientationEstimate invalid = match_with_distance(0.0, false);
  EXPECT_EQ(policy.observe(true, invalid), RelockPolicy::Action::kNone);
  EXPECT_EQ(policy.observe(true, invalid), RelockPolicy::Action::kWiden);
}

TEST(RelockPolicyTest, UnhintedMatchesNeverEscalate) {
  RelockPolicy policy({0.02, 1, 3.0});
  const OrientationEstimate poor = match_with_distance(0.5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.observe(false, poor), RelockPolicy::Action::kNone);
  }
}

TEST(RelockPolicyTest, AcceptPrefersValidAndCloser) {
  const OrientationEstimate good = match_with_distance(0.01);
  const OrientationEstimate worse = match_with_distance(0.05);
  const OrientationEstimate invalid = match_with_distance(0.0, false);
  EXPECT_TRUE(RelockPolicy::accept(good, worse));
  EXPECT_FALSE(RelockPolicy::accept(worse, good));
  EXPECT_TRUE(RelockPolicy::accept(good, invalid));
  EXPECT_FALSE(RelockPolicy::accept(invalid, good));
}

TEST(RelockPolicyTest, CountsExactlyOneEscalationPerLadderStep) {
  obs::TrackerStats stats;
  RelockPolicy policy({/*relock_distance=*/0.02, /*patience=*/2,
                       /*widen_factor=*/3.0});
  policy.set_stats(&stats);
  const OrientationEstimate poor = match_with_distance(0.08);

  // Forcing the first escalation increments the widen counter exactly
  // once, and nothing else.
  (void)policy.observe(true, poor);
  ASSERT_EQ(policy.observe(true, poor), RelockPolicy::Action::kWiden);
  EXPECT_EQ(stats.relock_widen.value(), 1u);
  EXPECT_EQ(stats.relock_global.value(), 0u);

  (void)policy.observe(true, poor);
  ASSERT_EQ(policy.observe(true, poor), RelockPolicy::Action::kGlobal);
  EXPECT_EQ(stats.relock_widen.value(), 1u);
  EXPECT_EQ(stats.relock_global.value(), 1u);

  // Good matches never escalate, so the counters stay put.
  const OrientationEstimate good = match_with_distance(0.005);
  for (int i = 0; i < 5; ++i) (void)policy.observe(true, good);
  EXPECT_EQ(stats.relock_widen.value(), 1u);
  EXPECT_EQ(stats.relock_global.value(), 1u);
}

// ---------------------------------------------------------------- stage 5

OrientationEstimate ambiguous_global(double win_theta, double win_dist,
                                     double alt_theta, double alt_dist) {
  OrientationEstimate e;
  e.valid = true;
  e.theta_rad = win_theta;
  e.match_distance = win_dist;
  e.candidates.push_back({win_dist, win_theta, 1.0, 10, 20});
  e.candidates.push_back({alt_dist, alt_theta, 1.2, 300, 24});
  return e;
}

TEST(TieBreakerTest, NearTiePicksContinuityReachableBranch) {
  const TieBreaker breaker(3.0);
  OrientationEstimate e = ambiguous_global(1.9, 0.010, 0.15, 0.014);
  ASSERT_TRUE(breaker.apply(e, /*last_theta_rad=*/0.0));
  EXPECT_DOUBLE_EQ(e.theta_rad, 0.15);
  // The pick replaces the whole match, not just the angle: forecasting
  // needs the picked segment and speed ratio.
  EXPECT_DOUBLE_EQ(e.match_distance, 0.014);
  EXPECT_EQ(e.match_start, 300u);
  EXPECT_DOUBLE_EQ(e.speed_ratio, 1.2);
}

TEST(TieBreakerTest, DecisiveWinnerIsKept) {
  const TieBreaker breaker(3.0);
  // The alternative is continuity-closer but scores 10x worse: decisive
  // shape evidence must not be overridden.
  OrientationEstimate e = ambiguous_global(1.9, 0.010, 0.15, 0.120);
  EXPECT_FALSE(breaker.apply(e, 0.0));
  EXPECT_DOUBLE_EQ(e.theta_rad, 1.9);
}

TEST(TieBreakerTest, EpsilonCloserDoesNotFlip) {
  const TieBreaker breaker(3.0);
  // Both branches are ~equally far from the previous output: flipping
  // for a 0.05 rad gain would oscillate between ticks.
  OrientationEstimate e = ambiguous_global(0.40, 0.010, 0.35, 0.011);
  EXPECT_FALSE(breaker.apply(e, 0.38));
  EXPECT_DOUBLE_EQ(e.theta_rad, 0.40);
}

TEST(TieBreakerTest, CountsOnlyAppliedFlips) {
  obs::TrackerStats stats;
  TieBreaker breaker(3.0);
  breaker.set_stats(&stats);

  OrientationEstimate flipped = ambiguous_global(1.9, 0.010, 0.15, 0.014);
  ASSERT_TRUE(breaker.apply(flipped, 0.0));
  EXPECT_EQ(stats.tie_break_applied.value(), 1u);

  // A kept winner (decisive match) must not count as an activation.
  OrientationEstimate kept = ambiguous_global(1.9, 0.010, 0.15, 0.120);
  ASSERT_FALSE(breaker.apply(kept, 0.0));
  EXPECT_EQ(stats.tie_break_applied.value(), 1u);
}

TEST(TieBreakerTest, IgnoresInvalidAndUnambiguous) {
  const TieBreaker breaker(3.0);
  OrientationEstimate invalid;
  EXPECT_FALSE(breaker.apply(invalid, 0.0));

  OrientationEstimate single;
  single.valid = true;
  single.theta_rad = 1.0;
  single.candidates.push_back({0.01, 1.0, 1.0, 0, 10});
  EXPECT_FALSE(breaker.apply(single, 0.0));
  EXPECT_DOUBLE_EQ(single.theta_rad, 1.0);
}

}  // namespace
}  // namespace vihot::core
