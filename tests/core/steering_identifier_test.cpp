#include "core/steering_identifier.h"

#include <gtest/gtest.h>

namespace vihot::core {
namespace {

imu::ImuSample sample(double t, double yaw) {
  imu::ImuSample s;
  s.t = t;
  s.gyro_yaw_rad_s = yaw;
  return s;
}

TEST(SteeringIdentifierTest, DefaultsToCsiMode) {
  SteeringIdentifier id;
  EXPECT_EQ(id.mode(), TrackingMode::kCsi);
}

TEST(SteeringIdentifierTest, CarTurnTriggersFallback) {
  SteeringIdentifier id;
  for (double t = 0.0; t < 1.0; t += 0.01) id.push_imu(sample(t, 0.0));
  EXPECT_EQ(id.mode(), TrackingMode::kCsi);
  for (double t = 1.0; t < 2.0; t += 0.01) id.push_imu(sample(t, 0.3));
  EXPECT_EQ(id.mode(), TrackingMode::kCameraFallback);
  EXPECT_TRUE(id.car_turning());
}

TEST(SteeringIdentifierTest, ReturnsToCsiAfterTurn) {
  SteeringIdentifier id;
  for (double t = 0.0; t < 1.0; t += 0.01) id.push_imu(sample(t, 0.3));
  EXPECT_EQ(id.mode(), TrackingMode::kCameraFallback);
  for (double t = 1.0; t < 4.0; t += 0.01) id.push_imu(sample(t, 0.0));
  EXPECT_EQ(id.mode(), TrackingMode::kCsi);
}

TEST(SteeringIdentifierTest, DisabledAblationAlwaysCsi) {
  // Fig. 17b "w/o steering identifier": the arbiter never leaves CSI
  // mode even while the car is turning.
  SteeringIdentifier::Config cfg;
  cfg.enabled = false;
  SteeringIdentifier id(cfg);
  for (double t = 0.0; t < 2.0; t += 0.01) id.push_imu(sample(t, 0.4));
  EXPECT_EQ(id.mode(), TrackingMode::kCsi);
  // The detector still sees the turn — only the arbitration is off.
  EXPECT_TRUE(id.car_turning());
}

TEST(SteeringIdentifierTest, GyroNoiseDoesNotTrip) {
  SteeringIdentifier id;
  util::Rng rng(2);
  for (double t = 0.0; t < 10.0; t += 0.01) {
    id.push_imu(sample(t, 0.002 + rng.normal(0.0, 0.006)));
    EXPECT_EQ(id.mode(), TrackingMode::kCsi);
  }
}

}  // namespace
}  // namespace vihot::core
