// Shared fixtures for core-module tests: synthetic profiles with known
// ground truth, plus a fast real profile built through the simulator.
#pragma once

#include <cmath>

#include "core/profile.h"
#include "sim/experiment.h"

namespace vihot::core::testing {

/// A synthetic position profile whose phase curve is an analytic,
/// invertible-by-series function of orientation: theta sweeps -1..1 rad
/// as a triangle wave, phase = f(theta) with a controlled shape.
inline PositionProfile synthetic_position(
    std::size_t index = 0, double fingerprint = 0.0,
    double rate_hz = 200.0, double sweep_speed_rad_s = 1.6,
    double duration_s = 8.0) {
  PositionProfile pos;
  pos.position_index = index;
  pos.fingerprint_phase = fingerprint;
  pos.csi.t0 = 0.0;
  pos.csi.dt = 1.0 / rate_hz;
  pos.orientation.t0 = 0.0;
  pos.orientation.dt = pos.csi.dt;
  const auto n = static_cast<std::size_t>(duration_s * rate_hz);
  const double period = 4.0 / sweep_speed_rad_s;  // span 2 rad out & back
  for (std::size_t k = 0; k < n; ++k) {
    const double t = pos.csi.time_at(k);
    // Triangle wave theta in [-1, 1].
    double u = std::fmod(t, period) / period;  // 0..1
    const double theta = (u < 0.5) ? (-1.0 + 4.0 * u) : (3.0 - 4.0 * u);
    // Non-injective phase curve: level + first + second harmonic.
    const double phase = fingerprint + 0.8 * std::sin(1.3 * theta) +
                         0.35 * std::sin(2.6 * theta + 0.7);
    pos.orientation.values.push_back(theta);
    pos.csi.values.push_back(phase);
  }
  return pos;
}

/// The synthetic phase function used above (for generating queries).
inline double synthetic_phase(double theta, double fingerprint = 0.0) {
  return fingerprint + 0.8 * std::sin(1.3 * theta) +
         0.35 * std::sin(2.6 * theta + 0.7);
}

/// A small multi-position profile with distinct fingerprints.
inline CsiProfile synthetic_profile(std::size_t positions = 5) {
  CsiProfile profile;
  profile.sample_rate_hz = 200.0;
  profile.reference_phase = 0.0;
  for (std::size_t i = 0; i < positions; ++i) {
    const double fp =
        -0.4 + 0.8 * static_cast<double>(i) /
                   static_cast<double>(positions > 1 ? positions - 1 : 1);
    profile.positions.push_back(synthetic_position(i, fp));
  }
  return profile;
}

/// A real profile built through the full simulator (shared across tests
/// in one binary; building takes ~0.5 s).
inline const sim::ScenarioConfig& fast_scenario() {
  static const sim::ScenarioConfig config = [] {
    sim::ScenarioConfig c;
    c.seed = 1234;
    c.runtime_sessions = 1;
    c.runtime_duration_s = 20.0;
    c.profiling_sweep_s = 8.0;
    return c;
  }();
  return config;
}

inline const CsiProfile& simulated_profile() {
  static const CsiProfile profile = [] {
    sim::ExperimentRunner runner(fast_scenario());
    return runner.build_profile();
  }();
  return profile;
}

}  // namespace vihot::core::testing
