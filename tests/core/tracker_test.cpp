#include "core/tracker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "obs/sink.h"
#include "tests/core/test_helpers.h"
#include "sim/drive_sim.h"
#include "sim/metrics.h"
#include "wifi/link.h"

namespace vihot::core {
namespace {

// Full-stack fixture: simulated profile + one simulated drive.
class TrackerTest : public ::testing::Test {
 protected:
  void run_drive(ViHotTracker& tracker, double duration,
                 std::vector<double>* errors,
                 bool steering_events = false) {
    sim::ScenarioConfig config = testing::fast_scenario();
    config.runtime_duration_s = duration;
    config.steering_events = steering_events;
    util::Rng rng(5551);
    const motion::HeadPositionGrid grid(config.driver.head_center,
                                        config.num_positions,
                                        config.position_spacing_m);
    util::Rng chan_rng = rng.fork("channel");
    const channel::ChannelModel channel =
        sim::make_channel(config, 0.0, chan_rng);
    wifi::WifiLink link(channel, config.noise, config.scheduler,
                        rng.fork("link"));
    sim::DriveSession session(config, grid.position(grid.count() / 2),
                              rng.fork("drive"));
    const auto csi = link.capture(0.0, duration, [&](double t) {
      return session.cabin_state_at(t);
    });
    imu::PhoneImu phone(imu::PhoneImu::Config{}, rng.fork("imu"));
    const auto imu_samples = phone.capture(0.0, duration,
                                           session.car_dynamics(),
                                           session.steering());
    camera::CameraTracker cam(camera::CameraTracker::Config{},
                              rng.fork("camera"));
    const auto cam_stream = cam.capture(
        0.0, duration, [&](double t) { return session.head_at(t); });

    std::size_t ci = 0;
    std::size_t ii = 0;
    std::size_t mi = 0;
    for (double t = 1.5; t < duration; t += 0.05) {
      while (ci < csi.size() && csi[ci].t <= t) tracker.push_csi(csi[ci++]);
      while (ii < imu_samples.size() && imu_samples[ii].t <= t) {
        tracker.push_imu(imu_samples[ii++]);
      }
      while (mi < cam_stream.size() && cam_stream[mi].t <= t) {
        tracker.push_camera(cam_stream[mi++]);
      }
      const TrackResult r = tracker.estimate(t);
      const motion::HeadState truth = session.head_at(t);
      if (!r.valid) continue;
      if (std::abs(truth.pose.theta) < 0.035 &&
          std::abs(truth.theta_dot) < 0.17) {
        continue;
      }
      errors->push_back(
          sim::angular_error_deg(r.theta_rad, truth.pose.theta));
    }
  }
};

TEST_F(TrackerTest, DropsAndCountsOutOfOrderCsi) {
  // Regression for the debug-only TimeSeries::push assert: a stale frame
  // must be dropped (and counted), not pushed into the sorted buffer.
  obs::Sink sink;
  TrackerConfig config;
  config.sink = &sink;
  ViHotTracker tracker(testing::synthetic_profile(3), config);
  const auto make = [](double t) {
    wifi::CsiMeasurement m;
    m.t = t;
    m.h[0].assign(4, std::polar(1.0, 0.3));
    m.h[1].assign(4, {1.0, 0.0});
    return m;
  };
  tracker.push_csi(make(1.00));
  tracker.push_csi(make(1.01));
  tracker.push_csi(make(0.50));  // out of order: dropped
  tracker.push_csi(make(1.02));
  EXPECT_EQ(sink.tracker.csi_out_of_order.value(), 1u);

  // The output-loop counters tick per estimate and per served mode.
  (void)tracker.estimate(1.02);
  (void)tracker.estimate(1.02);
  EXPECT_EQ(sink.tracker.estimates.value(), 2u);
  EXPECT_EQ(sink.tracker.mode_csi.value(), 2u);
  EXPECT_EQ(sink.tracker.mode_fallback.value(), 0u);
}

TEST_F(TrackerTest, TracksWithLowMedianError) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  std::vector<double> errors;
  run_drive(tracker, 20.0, &errors);
  ASSERT_GT(errors.size(), 20u);
  // The paper's headline band: 4-10 deg median.
  EXPECT_LT(util::median(errors), 12.0);
}

TEST_F(TrackerTest, EmptyProfileNeverValid) {
  ViHotTracker tracker(CsiProfile{}, TrackerConfig{});
  wifi::CsiMeasurement m;
  m.t = 0.0;
  m.h[0].assign(30, {1.0, 0.0});
  m.h[1].assign(30, {1.0, 0.0});
  tracker.push_csi(m);
  EXPECT_FALSE(tracker.estimate(0.1).valid);
}

TEST_F(TrackerTest, InvalidBeforeSetupTime) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  // No CSI pushed at all: nothing to match.
  EXPECT_FALSE(tracker.estimate(0.05).valid);
}

TEST_F(TrackerTest, PositionSlotConvergesToTruth) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  std::vector<double> errors;
  run_drive(tracker, 20.0, &errors);
  // The drive sits at the middle grid slot.
  const std::size_t mid = testing::simulated_profile().size() / 2;
  const std::size_t got = tracker.position_slot();
  EXPECT_LE(got > mid ? got - mid : mid - got, 1u);
}

TEST_F(TrackerTest, SteeringEventsSwitchToFallback) {
  TrackerConfig cfg;
  ViHotTracker tracker(testing::simulated_profile(), cfg);
  std::vector<double> errors;
  run_drive(tracker, 25.0, &errors, /*steering_events=*/true);
  // The identifier must have engaged at least once over 25 s with turn
  // events scheduled (mean interval 25 s, but micro+events both exist).
  // The mode is a function of the last IMU state; just sanity check the
  // API and the error level stays sane despite steering interference.
  EXPECT_LT(util::median(errors), 25.0);
}

TEST_F(TrackerTest, SteeringFallbackUsesCameraEstimate) {
  // Force the identifier into fallback with sustained body yaw, provide a
  // camera estimate, and check the output comes from the camera.
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  for (double t = 0.0; t < 1.0; t += 0.01) {
    imu::ImuSample s;
    s.t = t;
    s.gyro_yaw_rad_s = 0.3;  // intersection turn
    tracker.push_imu(s);
  }
  EXPECT_EQ(tracker.mode(), TrackingMode::kCameraFallback);
  camera::CameraTracker::Estimate cam;
  cam.t = 0.98;
  cam.theta = 0.42;
  cam.valid = true;
  tracker.push_camera(cam);
  const TrackResult r = tracker.estimate(1.0);
  EXPECT_EQ(r.mode, TrackingMode::kCameraFallback);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.theta_rad, 0.42, 1e-9);
}

TEST_F(TrackerTest, FallbackInvalidWithoutFreshCamera) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  for (double t = 0.0; t < 1.0; t += 0.01) {
    imu::ImuSample s;
    s.t = t;
    s.gyro_yaw_rad_s = 0.3;
    tracker.push_imu(s);
  }
  // A stale camera estimate (older than camera_staleness_s) is rejected.
  camera::CameraTracker::Estimate cam;
  cam.t = 0.2;
  cam.theta = 0.42;
  cam.valid = true;
  tracker.push_camera(cam);
  const TrackResult r = tracker.estimate(1.0);
  EXPECT_EQ(r.mode, TrackingMode::kCameraFallback);
  EXPECT_FALSE(r.valid);
}

TEST_F(TrackerTest, InvalidCameraEstimatesIgnored) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  for (double t = 0.0; t < 1.0; t += 0.01) {
    imu::ImuSample s;
    s.t = t;
    s.gyro_yaw_rad_s = 0.3;
    tracker.push_imu(s);
  }
  camera::CameraTracker::Estimate cam;
  cam.t = 0.99;
  cam.theta = 1.0;
  cam.valid = false;  // lost-track frame
  tracker.push_camera(cam);
  EXPECT_FALSE(tracker.estimate(1.0).valid);
}

TEST_F(TrackerTest, ForecastNeedsAMatch) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  EXPECT_FALSE(tracker.forecast(0.1).valid);
  std::vector<double> errors;
  run_drive(tracker, 10.0, &errors);
  const Forecast f = tracker.forecast(0.1);
  // After a drive with matches, forecasting works.
  EXPECT_TRUE(f.valid);
}

TEST_F(TrackerTest, JumpFilterLimitsOutputRate) {
  TrackerConfig cfg;
  cfg.jump_filter_enabled = true;
  ViHotTracker tracker(testing::simulated_profile(), cfg);
  sim::ScenarioConfig config = testing::fast_scenario();
  // Track output deltas over a drive; no two consecutive outputs (50 ms
  // apart) may exceed the configured rate bound + slack, except for
  // re-lock jumps which are rare.
  util::Rng rng(777);
  const motion::HeadPositionGrid grid(config.driver.head_center,
                                      config.num_positions,
                                      config.position_spacing_m);
  util::Rng chan_rng = rng.fork("channel");
  const channel::ChannelModel channel =
      sim::make_channel(config, 0.0, chan_rng);
  wifi::WifiLink link(channel, config.noise, config.scheduler,
                      rng.fork("link"));
  sim::DriveSession session(config, grid.position(grid.count() / 2),
                            rng.fork("drive"));
  const auto csi = link.capture(0.0, 15.0, [&](double t) {
    return session.cabin_state_at(t);
  });
  std::size_t ci = 0;
  double prev = 0.0;
  bool have_prev = false;
  int big_jumps = 0;
  int outputs = 0;
  for (double t = 1.5; t < 15.0; t += 0.05) {
    while (ci < csi.size() && csi[ci].t <= t) tracker.push_csi(csi[ci++]);
    const TrackResult r = tracker.estimate(t);
    if (!r.valid) continue;
    if (have_prev &&
        std::abs(r.theta_rad - prev) >
            cfg.max_theta_rate_rad_s * 0.05 + 0.05) {
      ++big_jumps;
    }
    prev = r.theta_rad;
    have_prev = true;
    ++outputs;
  }
  ASSERT_GT(outputs, 100);
  EXPECT_LT(static_cast<double>(big_jumps) / outputs, 0.12);
}

// ------------------------------------------------------------------------
// Staged re-lock and twin-branch tie-break, driven through the full
// tracker with hand-built profiles whose phase curves make the failure
// modes exact (stages_test.cpp covers the stages in isolation).

// Phase-controlled measurement: h[0] carries phase `phi` against a flat
// h[1], so the sanitized antenna-difference phase is exactly `phi`.
wifi::CsiMeasurement phase_measurement(double t, double phi) {
  wifi::CsiMeasurement m;
  m.t = t;
  m.h[0].assign(4, std::polar(1.0, phi));
  m.h[1].assign(4, {1.0, 0.0});
  return m;
}

// Single-position profile sweeping theta in [lo, hi] as a triangle wave
// at 1.6 rad/s, with phase = phase_of(theta).
template <typename PhaseFn>
CsiProfile swept_profile(PhaseFn&& phase_of, double lo = -2.0,
                         double hi = 2.0, std::size_t num_samples = 2000) {
  PositionProfile pos;
  pos.position_index = 0;
  pos.fingerprint_phase = phase_of(0.0);
  pos.csi.t0 = 0.0;
  pos.csi.dt = 1.0 / 200.0;
  pos.orientation.t0 = 0.0;
  pos.orientation.dt = pos.csi.dt;
  const double period = 2.0 * (hi - lo) / 1.6;  // out & back at 1.6 rad/s
  for (std::size_t k = 0; k < num_samples; ++k) {
    const double t = pos.csi.time_at(k);
    const double u = std::fmod(t, period) / period;
    const double theta = lo + (hi - lo) * (u < 0.5 ? 2.0 * u
                                                   : 2.0 - 2.0 * u);
    pos.orientation.values.push_back(theta);
    pos.csi.values.push_back(phase_of(theta));
  }
  CsiProfile profile;
  profile.sample_rate_hz = 200.0;
  profile.reference_phase = 0.0;
  profile.positions.push_back(std::move(pos));
  return profile;
}

TEST_F(TrackerTest, WrongBranchHintRecoversViaStagedRelock) {
  // Injective unit-slope curve: phase == theta, so match quality reads
  // directly as branch correctness.
  const CsiProfile profile = swept_profile([](double th) { return th; });

  TrackerConfig cfg;
  // Tight continuity (0.125 rad reachable per 50 ms tick) and quick
  // escalation, with the window-energy global switch disabled so the
  // ONLY recovery path is the staged re-lock ladder.
  cfg.max_theta_rate_rad_s = 0.5;
  cfg.continuity_slack_rad = 0.1;
  cfg.relock_patience = 2;
  cfg.moving_spread_rad = 10.0;
  cfg.bias_correction = false;
  ViHotTracker tracker(profile, cfg);

  // The head: forward start, steady turn to +0.8 — then the tracker's
  // belief is invalidated by a teleport to -1.5 (in reality: the hint
  // locked a wrong branch and the true motion diverged).
  const auto theta_true = [](double t) {
    return t <= 1.0 ? 0.8 * t : -1.5 + 0.8 * (t - 1.0);
  };
  double next_csi = 0.0;
  double recovered_at = -1.0;
  bool wrong_branch_held = false;
  for (double t = 0.15; t < 2.0; t += 0.05) {
    for (; next_csi <= t; next_csi += 0.004) {
      tracker.push_csi(phase_measurement(next_csi, theta_true(next_csi)));
    }
    const TrackResult r = tracker.estimate(t);
    if (t <= 1.0) continue;
    ASSERT_TRUE(r.valid) << "t=" << t;
    const double err = std::abs(r.theta_rad - theta_true(t));
    if (t < 1.1) {
      // Inside the patience span the wrong branch is still held: the
      // hint forbids the 2.3 rad jump.
      EXPECT_GT(err, 0.8) << "t=" << t;
      wrong_branch_held = true;
    } else if (err < 0.2 && recovered_at < 0.0) {
      recovered_at = t;
    }
  }
  EXPECT_TRUE(wrong_branch_held);
  // Two escalations at patience 2 (widen at ~2 ticks, global at ~4) plus
  // slack: the global stage must have re-locked within half a second.
  ASSERT_GT(recovered_at, 0.0) << "tracker never re-locked";
  EXPECT_LT(recovered_at, 1.5);

  // And it keeps tracking the true branch afterwards.
  const TrackResult end = tracker.estimate(2.0);
  ASSERT_TRUE(end.valid);
  EXPECT_NEAR(end.theta_rad, theta_true(2.0), 0.2);
}

TEST_F(TrackerTest, AmbiguousGlobalMatchFollowsContinuity) {
  // Periodic curve: theta and theta + pi/2 produce IDENTICAL phase and
  // slope — exact twin branches. Two trackers are walked to twin priors
  // and then fed the exact same fast (global-regime) phase stream; each
  // must resolve the ambiguity toward its own reachable branch.
  const auto phase_of = [](double th) { return 0.4 * std::sin(4.0 * th); };
  constexpr double kTwin = 1.5707963267948966;  // pi/2: sin(4th) period
  // The range holds exactly the two twin branches the test walks, and
  // the sweep covers exactly ONE period: each branch then appears once
  // per leg (2 branches x 2 legs = the matcher's top-4 candidate list),
  // so the reachable branch is always among the reported candidates.
  // More range or more periods would crowd it out with duplicates.
  const CsiProfile profile =
      swept_profile(phase_of, -1.2, 1.6, /*num_samples=*/700);

  TrackerConfig cfg;
  cfg.moving_spread_rad = 0.15;  // the fast segment must match globally
  cfg.bias_correction = false;
  ViHotTracker a(profile, cfg);
  ViHotTracker b(profile, cfg);

  // Twin priors a quarter-period apart; the walks are slow enough to
  // stay in the hinted regime, then a dwell parks each tracker on its
  // branch before the fast ambiguous segment.
  const auto theta_a = [&](double t) {
    if (t <= 0.2) return 0.0;
    if (t <= 2.2) return -0.5 * (t - 0.2);
    if (t <= 2.6) return -1.0;
    return -1.0 + 2.5 * (t - 2.6);
  };
  const auto theta_b = [&](double t) {
    if (t <= 0.2) return 0.0;
    if (t <= 0.2 + 2.0 * (kTwin - 1.0)) return 0.5 * (t - 0.2);
    if (t <= 2.6) return kTwin - 1.0;
    return kTwin - 1.0 + 2.5 * (t - 2.6);
  };

  double next_csi = 0.0;
  TrackResult ra, rb;
  for (double t = 0.15; t <= 2.9; t += 0.05) {
    for (; next_csi <= t; next_csi += 0.004) {
      a.push_csi(phase_measurement(next_csi, phase_of(theta_a(next_csi))));
      b.push_csi(phase_measurement(next_csi, phase_of(theta_b(next_csi))));
    }
    ra = a.estimate(t);
    rb = b.estimate(t);
    if (t > 2.5 && t < 2.6) {
      // Both parked on their priors before the ambiguous segment.
      ASSERT_TRUE(ra.valid);
      ASSERT_TRUE(rb.valid);
      ASSERT_NEAR(ra.theta_rad, -1.0, 0.2);
      ASSERT_NEAR(rb.theta_rad, kTwin - 1.0, 0.2);
    }
  }
  // From t = 2.6 the two phase streams are IDENTICAL (twin branches), yet
  // each tracker must have followed its own: the tie-break picked the
  // continuity-reachable candidate, not an arbitrary twin.
  ASSERT_TRUE(ra.valid);
  ASSERT_TRUE(rb.valid);
  EXPECT_NEAR(ra.theta_rad, theta_a(2.9), 0.25);
  EXPECT_NEAR(rb.theta_rad, theta_b(2.9), 0.25);
  EXPECT_NEAR(rb.theta_rad - ra.theta_rad, kTwin, 0.3);
}

// --------------------------------------------------------- stale window

TEST(StaleWindowTest, FeedGapForcesRelockAndCountsIt) {
  obs::Sink sink;
  TrackerConfig config;
  config.sink = &sink;
  ASSERT_GT(config.stale_window_s, 0.0);  // guard is on by default
  ViHotTracker tracker(testing::synthetic_profile(3), config);
  const auto theta_at = [](double t) { return 0.8 * std::sin(0.9 * t); };
  const auto feed = [&](double from, double to) {
    for (double t = from; t < to; t += 0.005) {
      tracker.push_csi(
          phase_measurement(t, testing::synthetic_phase(theta_at(t))));
    }
  };

  // Continuous feed: the guard must never fire.
  feed(0.0, 3.0);
  for (double t = 1.0; t < 3.0; t += 0.05) (void)tracker.estimate(t);
  EXPECT_EQ(sink.tracker.stale_window_relocks.value(), 0u);

  // A feed gap wider than the stale window (burst loss), then resume:
  // the first estimate after the gap must reset continuity (count a
  // relock) instead of extrapolating the pre-gap output across it.
  feed(3.0 + config.stale_window_s + 0.8, 6.5);
  bool valid_after = false;
  for (double t = 4.6; t < 6.5; t += 0.05) {
    valid_after = tracker.estimate(t).valid || valid_after;
  }
  EXPECT_GE(sink.tracker.stale_window_relocks.value(), 1u);
  EXPECT_TRUE(valid_after);  // the tracker re-locks, it does not die
}

TEST(StaleWindowTest, ZeroDisablesTheGuard) {
  obs::Sink sink;
  TrackerConfig config;
  config.sink = &sink;
  config.stale_window_s = 0.0;
  ViHotTracker tracker(testing::synthetic_profile(3), config);
  for (double t = 0.0; t < 2.0; t += 0.005) {
    tracker.push_csi(phase_measurement(
        t, testing::synthetic_phase(0.8 * std::sin(0.9 * t))));
  }
  for (double t = 1.0; t < 2.0; t += 0.05) (void)tracker.estimate(t);
  // A wide gap, then resume: with the guard disabled nothing is counted.
  for (double t = 5.0; t < 6.0; t += 0.005) {
    tracker.push_csi(phase_measurement(
        t, testing::synthetic_phase(0.8 * std::sin(0.9 * t))));
  }
  (void)tracker.estimate(5.5);
  EXPECT_EQ(sink.tracker.stale_window_relocks.value(), 0u);
}

}  // namespace
}  // namespace vihot::core
