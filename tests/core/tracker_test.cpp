#include "core/tracker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/core/test_helpers.h"
#include "sim/drive_sim.h"
#include "sim/metrics.h"
#include "wifi/link.h"

namespace vihot::core {
namespace {

// Full-stack fixture: simulated profile + one simulated drive.
class TrackerTest : public ::testing::Test {
 protected:
  void run_drive(ViHotTracker& tracker, double duration,
                 std::vector<double>* errors,
                 bool steering_events = false) {
    sim::ScenarioConfig config = testing::fast_scenario();
    config.runtime_duration_s = duration;
    config.steering_events = steering_events;
    util::Rng rng(5551);
    const motion::HeadPositionGrid grid(config.driver.head_center,
                                        config.num_positions,
                                        config.position_spacing_m);
    util::Rng chan_rng = rng.fork("channel");
    const channel::ChannelModel channel =
        sim::make_channel(config, 0.0, chan_rng);
    wifi::WifiLink link(channel, config.noise, config.scheduler,
                        rng.fork("link"));
    sim::DriveSession session(config, grid.position(grid.count() / 2),
                              rng.fork("drive"));
    const auto csi = link.capture(0.0, duration, [&](double t) {
      return session.cabin_state_at(t);
    });
    imu::PhoneImu phone(imu::PhoneImu::Config{}, rng.fork("imu"));
    const auto imu_samples = phone.capture(0.0, duration,
                                           session.car_dynamics(),
                                           session.steering());
    camera::CameraTracker cam(camera::CameraTracker::Config{},
                              rng.fork("camera"));
    const auto cam_stream = cam.capture(
        0.0, duration, [&](double t) { return session.head_at(t); });

    std::size_t ci = 0;
    std::size_t ii = 0;
    std::size_t mi = 0;
    for (double t = 1.5; t < duration; t += 0.05) {
      while (ci < csi.size() && csi[ci].t <= t) tracker.push_csi(csi[ci++]);
      while (ii < imu_samples.size() && imu_samples[ii].t <= t) {
        tracker.push_imu(imu_samples[ii++]);
      }
      while (mi < cam_stream.size() && cam_stream[mi].t <= t) {
        tracker.push_camera(cam_stream[mi++]);
      }
      const TrackResult r = tracker.estimate(t);
      const motion::HeadState truth = session.head_at(t);
      if (!r.valid) continue;
      if (std::abs(truth.pose.theta) < 0.035 &&
          std::abs(truth.theta_dot) < 0.17) {
        continue;
      }
      errors->push_back(
          sim::angular_error_deg(r.theta_rad, truth.pose.theta));
    }
  }
};

TEST_F(TrackerTest, TracksWithLowMedianError) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  std::vector<double> errors;
  run_drive(tracker, 20.0, &errors);
  ASSERT_GT(errors.size(), 20u);
  // The paper's headline band: 4-10 deg median.
  EXPECT_LT(util::median(errors), 12.0);
}

TEST_F(TrackerTest, EmptyProfileNeverValid) {
  ViHotTracker tracker(CsiProfile{}, TrackerConfig{});
  wifi::CsiMeasurement m;
  m.t = 0.0;
  m.h[0].assign(30, {1.0, 0.0});
  m.h[1].assign(30, {1.0, 0.0});
  tracker.push_csi(m);
  EXPECT_FALSE(tracker.estimate(0.1).valid);
}

TEST_F(TrackerTest, InvalidBeforeSetupTime) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  // No CSI pushed at all: nothing to match.
  EXPECT_FALSE(tracker.estimate(0.05).valid);
}

TEST_F(TrackerTest, PositionSlotConvergesToTruth) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  std::vector<double> errors;
  run_drive(tracker, 20.0, &errors);
  // The drive sits at the middle grid slot.
  const std::size_t mid = testing::simulated_profile().size() / 2;
  const std::size_t got = tracker.position_slot();
  EXPECT_LE(got > mid ? got - mid : mid - got, 1u);
}

TEST_F(TrackerTest, SteeringEventsSwitchToFallback) {
  TrackerConfig cfg;
  ViHotTracker tracker(testing::simulated_profile(), cfg);
  std::vector<double> errors;
  run_drive(tracker, 25.0, &errors, /*steering_events=*/true);
  // The identifier must have engaged at least once over 25 s with turn
  // events scheduled (mean interval 25 s, but micro+events both exist).
  // The mode is a function of the last IMU state; just sanity check the
  // API and the error level stays sane despite steering interference.
  EXPECT_LT(util::median(errors), 25.0);
}

TEST_F(TrackerTest, SteeringFallbackUsesCameraEstimate) {
  // Force the identifier into fallback with sustained body yaw, provide a
  // camera estimate, and check the output comes from the camera.
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  for (double t = 0.0; t < 1.0; t += 0.01) {
    imu::ImuSample s;
    s.t = t;
    s.gyro_yaw_rad_s = 0.3;  // intersection turn
    tracker.push_imu(s);
  }
  EXPECT_EQ(tracker.mode(), TrackingMode::kCameraFallback);
  camera::CameraTracker::Estimate cam;
  cam.t = 0.98;
  cam.theta = 0.42;
  cam.valid = true;
  tracker.push_camera(cam);
  const TrackResult r = tracker.estimate(1.0);
  EXPECT_EQ(r.mode, TrackingMode::kCameraFallback);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.theta_rad, 0.42, 1e-9);
}

TEST_F(TrackerTest, FallbackInvalidWithoutFreshCamera) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  for (double t = 0.0; t < 1.0; t += 0.01) {
    imu::ImuSample s;
    s.t = t;
    s.gyro_yaw_rad_s = 0.3;
    tracker.push_imu(s);
  }
  // A stale camera estimate (older than camera_staleness_s) is rejected.
  camera::CameraTracker::Estimate cam;
  cam.t = 0.2;
  cam.theta = 0.42;
  cam.valid = true;
  tracker.push_camera(cam);
  const TrackResult r = tracker.estimate(1.0);
  EXPECT_EQ(r.mode, TrackingMode::kCameraFallback);
  EXPECT_FALSE(r.valid);
}

TEST_F(TrackerTest, InvalidCameraEstimatesIgnored) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  for (double t = 0.0; t < 1.0; t += 0.01) {
    imu::ImuSample s;
    s.t = t;
    s.gyro_yaw_rad_s = 0.3;
    tracker.push_imu(s);
  }
  camera::CameraTracker::Estimate cam;
  cam.t = 0.99;
  cam.theta = 1.0;
  cam.valid = false;  // lost-track frame
  tracker.push_camera(cam);
  EXPECT_FALSE(tracker.estimate(1.0).valid);
}

TEST_F(TrackerTest, ForecastNeedsAMatch) {
  ViHotTracker tracker(testing::simulated_profile(), TrackerConfig{});
  EXPECT_FALSE(tracker.forecast(0.1).valid);
  std::vector<double> errors;
  run_drive(tracker, 10.0, &errors);
  const Forecast f = tracker.forecast(0.1);
  // After a drive with matches, forecasting works.
  EXPECT_TRUE(f.valid);
}

TEST_F(TrackerTest, JumpFilterLimitsOutputRate) {
  TrackerConfig cfg;
  cfg.jump_filter_enabled = true;
  ViHotTracker tracker(testing::simulated_profile(), cfg);
  sim::ScenarioConfig config = testing::fast_scenario();
  // Track output deltas over a drive; no two consecutive outputs (50 ms
  // apart) may exceed the configured rate bound + slack, except for
  // re-lock jumps which are rare.
  util::Rng rng(777);
  const motion::HeadPositionGrid grid(config.driver.head_center,
                                      config.num_positions,
                                      config.position_spacing_m);
  util::Rng chan_rng = rng.fork("channel");
  const channel::ChannelModel channel =
      sim::make_channel(config, 0.0, chan_rng);
  wifi::WifiLink link(channel, config.noise, config.scheduler,
                      rng.fork("link"));
  sim::DriveSession session(config, grid.position(grid.count() / 2),
                            rng.fork("drive"));
  const auto csi = link.capture(0.0, 15.0, [&](double t) {
    return session.cabin_state_at(t);
  });
  std::size_t ci = 0;
  double prev = 0.0;
  bool have_prev = false;
  int big_jumps = 0;
  int outputs = 0;
  for (double t = 1.5; t < 15.0; t += 0.05) {
    while (ci < csi.size() && csi[ci].t <= t) tracker.push_csi(csi[ci++]);
    const TrackResult r = tracker.estimate(t);
    if (!r.valid) continue;
    if (have_prev &&
        std::abs(r.theta_rad - prev) >
            cfg.max_theta_rate_rad_s * 0.05 + 0.05) {
      ++big_jumps;
    }
    prev = r.theta_rad;
    have_prev = true;
    ++outputs;
  }
  ASSERT_GT(outputs, 100);
  EXPECT_LT(static_cast<double>(big_jumps) / outputs, 0.12);
}

}  // namespace
}  // namespace vihot::core
