// vihotd end-to-end tests (ctest label: daemon; re-run under tsan).
//
// Each test boots a real Daemon on a private abstract-pathed unix
// socket and talks to it over the wire — the same path production
// clients take. The robustness cases pin the headline contract: a
// hostile or dying CLIENT costs that client its connection, never the
// daemon, never the tick loop, and never another client's stream. The
// determinism case replays a golden corpus log through the daemon and
// bit-compares every streamed TrackResult against the recording.
#include "daemon/daemon.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.h"
#include "daemon/loadgen.h"
#include "daemon/protocol.h"
#include "replay/replayer.h"
#include "replay/vrlog.h"
#include "tests/core/test_helpers.h"

namespace vihot::daemon {
namespace {

std::string corpus_log(const char* name) {
  return std::string(VIHOT_CORPUS_DIR) + "/" + name;
}

/// Boots a daemon on a unique temp socket; serves on a background
/// thread until the fixture (or the test, via shutdown paths) stops it.
class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override { boot({}); }

  void boot(DaemonConfig config) {
    static std::atomic<int> counter{0};
    socket_path_ = (std::filesystem::temp_directory_path() /
                    ("vihotd-test-" + std::to_string(::getpid()) + "-" +
                     std::to_string(counter.fetch_add(1)) + ".sock"))
                       .string();
    config.socket_path = socket_path_;
    daemon_ = std::make_unique<Daemon>(config);
    ASSERT_TRUE(daemon_->start()) << daemon_->error();
    serve_thread_ = std::thread([this] { daemon_->serve(); });
  }

  void TearDown() override {
    if (daemon_) daemon_->request_shutdown();
    if (serve_thread_.joinable()) serve_thread_.join();
    daemon_.reset();
  }

  /// The daemon must still be fully alive: a fresh control client can
  /// complete the handshake and read health.
  void expect_daemon_alive() {
    Client control = Client::connect(socket_path_, Role::kControl);
    ASSERT_TRUE(control.ok()) << control.error();
    const auto health = control.health();
    ASSERT_TRUE(health.has_value()) << control.error();
    EXPECT_NE(health->find("\"daemon\""), std::string::npos);
  }

  /// Feeds one session + one tick so there is real engine state.
  void open_and_tick(Client& feeder, std::uint64_t client_sid = 1) {
    std::uint64_t global_sid = 0;
    ASSERT_TRUE(feeder.open_session(client_sid,
                                    core::testing::synthetic_profile(2), {},
                                    &global_sid))
        << feeder.error();
    EXPECT_NE(global_sid, 0u);
    ASSERT_TRUE(feeder.send_tick(0.01));
  }

  std::string socket_path_;
  std::unique_ptr<Daemon> daemon_;
  std::thread serve_thread_;
};

// --------------------------------------------------------- happy path

TEST_F(DaemonTest, HealthReportsDaemonAndMetricsSections) {
  Client control = Client::connect(socket_path_, Role::kControl);
  ASSERT_TRUE(control.ok()) << control.error();
  const auto health = control.health();
  ASSERT_TRUE(health.has_value());
  EXPECT_NE(health->find("\"daemon\""), std::string::npos);
  EXPECT_NE(health->find("\"sessions\""), std::string::npos);
  EXPECT_NE(health->find("\"metrics\""), std::string::npos);
}

TEST_F(DaemonTest, SubscriberReceivesTickBroadcast) {
  Client sub = Client::connect(socket_path_, Role::kSubscriber);
  ASSERT_TRUE(sub.ok()) << sub.error();
  ASSERT_TRUE(sub.subscribe());

  Client feeder = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(feeder.ok()) << feeder.error();
  open_and_tick(feeder);

  const auto frame = sub.next_results();
  ASSERT_TRUE(frame.has_value()) << sub.error();
  ASSERT_EQ(frame->ids.size(), 1u);
  EXPECT_EQ(frame->results.size(), 1u);
}

TEST_F(DaemonTest, CorpusReplayIsBitIdenticalThroughTheDaemon) {
  // The tentpole acceptance gate, in-process: a recorded drive pushed
  // through socket -> ingress -> fleet -> fan-out must reproduce every
  // recorded TrackResult byte for byte.
  const replay::LoadedLog log =
      replay::LoadedLog::load(corpus_log("baseline.vrlog"));
  ASSERT_TRUE(log.ok()) << log.error();
  LoadgenOptions options;
  options.socket_path = socket_path_;
  const VerifyStats st = verify_against_daemon(log, options);
  EXPECT_TRUE(st.ok) << st.error << " " << st.first_mismatch;
  EXPECT_GT(st.ticks_compared, 0u);
  EXPECT_GT(st.results_compared, 0u);
  EXPECT_EQ(st.mismatches, 0u);
}

TEST_F(DaemonTest, SequentialCorpusRunsEachStartFresh) {
  // The monotone tick clamp resets when the fleet empties: a second
  // recording (with its own t=0 clock) verified against a WARM daemon
  // must still be bit-identical.
  for (const char* name : {"baseline.vrlog", "steering.vrlog"}) {
    SCOPED_TRACE(name);
    const replay::LoadedLog log = replay::LoadedLog::load(corpus_log(name));
    ASSERT_TRUE(log.ok()) << log.error();
    LoadgenOptions options;
    options.socket_path = socket_path_;
    const VerifyStats st = verify_against_daemon(log, options);
    EXPECT_TRUE(st.ok) << st.error << " " << st.first_mismatch;
  }
}

// ---------------------------------------------------------- hostility

TEST_F(DaemonTest, GarbageBytesCostOnlyTheOffendingConnection) {
  Client evil = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(evil.ok()) << evil.error();
  std::vector<unsigned char> junk(256, 0x5A);
  evil.send_raw(junk.data(), junk.size());
  evil.close();
  expect_daemon_alive();
}

TEST_F(DaemonTest, CrcCorruptFrameDropsTheConnection) {
  Client evil = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(evil.ok()) << evil.error();
  std::vector<unsigned char> bytes;
  std::vector<unsigned char> payload;
  replay::put_f64(payload, 1.0);
  append_frame(bytes, MsgType::kTick, payload);
  bytes[bytes.size() - 1] ^= 0xFF;  // corrupt the CRC itself
  evil.send_raw(bytes.data(), bytes.size());
  evil.close();
  expect_daemon_alive();
}

TEST_F(DaemonTest, OversizedLengthFieldDropsTheConnection) {
  Client evil = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(evil.ok()) << evil.error();
  std::vector<unsigned char> header;
  replay::put_u32(header, static_cast<std::uint32_t>(MsgType::kCsi));
  replay::put_u32(header, 0x7FFFFFFFu);
  evil.send_raw(header.data(), header.size());
  evil.close();
  expect_daemon_alive();
}

TEST_F(DaemonTest, MidFrameDisconnectLeavesTheDaemonServing) {
  Client evil = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(evil.ok()) << evil.error();
  std::vector<unsigned char> bytes;
  std::vector<unsigned char> payload;
  replay::put_f64(payload, 1.0);
  append_frame(bytes, MsgType::kTick, payload);
  evil.send_raw(bytes.data(), bytes.size() / 2);  // half a valid frame
  evil.close();
  expect_daemon_alive();
}

TEST_F(DaemonTest, FrameBeforeHelloIsAProtocolError) {
  Stream raw = Stream::connect_unix(socket_path_);
  ASSERT_TRUE(raw.valid());
  std::vector<unsigned char> bytes;
  std::vector<unsigned char> payload;
  replay::put_f64(payload, 1.0);
  append_frame(bytes, MsgType::kTick, payload);
  ASSERT_TRUE(raw.send_all(bytes.data(), bytes.size()));

  // The daemon answers kError(kProtocol) and closes.
  FrameParser parser;
  unsigned char buf[512];
  bool got_error = false;
  for (int spins = 0; spins < 100 && !got_error; ++spins) {
    const long n = raw.recv_some(buf, sizeof buf, 200);
    if (n <= 0 && n != -2) break;
    if (n > 0) parser.feed(buf, static_cast<std::size_t>(n));
    while (auto f = parser.next()) {
      if (f->type != MsgType::kError) continue;
      replay::Cursor in(f->payload.data(), f->payload.size());
      ErrorCode code{};
      std::string message;
      ASSERT_TRUE(decode_error(in, &code, &message));
      EXPECT_EQ(code, ErrorCode::kProtocol);
      got_error = true;
    }
  }
  EXPECT_TRUE(got_error);
  expect_daemon_alive();
}

TEST_F(DaemonTest, VersionMismatchIsRejected) {
  Stream raw = Stream::connect_unix(socket_path_);
  ASSERT_TRUE(raw.valid());
  std::vector<unsigned char> payload;
  replay::put_u32(payload, kProtocolVersion + 7);
  replay::put_u8(payload, static_cast<std::uint8_t>(Role::kFeeder));
  std::vector<unsigned char> bytes;
  append_frame(bytes, MsgType::kHello, payload);
  ASSERT_TRUE(raw.send_all(bytes.data(), bytes.size()));

  // No kHelloAck may arrive — only kError and/or EOF.
  FrameParser parser;
  unsigned char buf[512];
  for (int spins = 0; spins < 100; ++spins) {
    const long n = raw.recv_some(buf, sizeof buf, 200);
    if (n == 0 || n == -1) break;
    if (n > 0) parser.feed(buf, static_cast<std::size_t>(n));
    while (auto f = parser.next()) {
      EXPECT_NE(f->type, MsgType::kHelloAck) << "mismatched hello acked";
    }
  }
  expect_daemon_alive();
}

TEST_F(DaemonTest, RoleIsEnforcedPerFrameType) {
  // A subscriber sending feeder verbs gets kBadRole and is dropped.
  Client sub = Client::connect(socket_path_, Role::kSubscriber);
  ASSERT_TRUE(sub.ok()) << sub.error();
  std::vector<unsigned char> bytes;
  std::vector<unsigned char> payload;
  replay::put_f64(payload, 1.0);
  append_frame(bytes, MsgType::kTick, payload);
  ASSERT_TRUE(sub.send_raw(bytes.data(), bytes.size()));

  FrameParser parser;
  unsigned char buf[512];
  bool got_bad_role = false;
  for (int spins = 0; spins < 100 && !got_bad_role; ++spins) {
    const long n = sub.stream().recv_some(buf, sizeof buf, 200);
    if (n <= 0 && n != -2) break;
    if (n > 0) parser.feed(buf, static_cast<std::size_t>(n));
    while (auto f = parser.next()) {
      if (f->type != MsgType::kError) continue;
      replay::Cursor in(f->payload.data(), f->payload.size());
      ErrorCode code{};
      std::string message;
      ASSERT_TRUE(decode_error(in, &code, &message));
      EXPECT_EQ(code, ErrorCode::kBadRole);
      got_bad_role = true;
    }
  }
  EXPECT_TRUE(got_bad_role);
  expect_daemon_alive();
}

TEST_F(DaemonTest, FeedForUnknownSessionIsRejected) {
  Client feeder = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(feeder.ok()) << feeder.error();
  wifi::CsiMeasurement m;
  m.t = 0.0;
  ASSERT_TRUE(feeder.send_csi(/*client_sid=*/99, m));

  FrameParser parser;
  unsigned char buf[512];
  bool got_unknown = false;
  for (int spins = 0; spins < 100 && !got_unknown; ++spins) {
    const long n = feeder.stream().recv_some(buf, sizeof buf, 200);
    if (n <= 0 && n != -2) break;
    if (n > 0) parser.feed(buf, static_cast<std::size_t>(n));
    while (auto f = parser.next()) {
      if (f->type != MsgType::kError) continue;
      replay::Cursor in(f->payload.data(), f->payload.size());
      ErrorCode code{};
      std::string message;
      ASSERT_TRUE(decode_error(in, &code, &message));
      EXPECT_EQ(code, ErrorCode::kUnknownSession);
      got_unknown = true;
    }
  }
  EXPECT_TRUE(got_unknown);
  expect_daemon_alive();
}

TEST_F(DaemonTest, DuplicateClientSessionIdIsRejected) {
  Client feeder = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(feeder.ok()) << feeder.error();
  std::uint64_t global_sid = 0;
  const auto profile = core::testing::synthetic_profile(2);
  ASSERT_TRUE(feeder.open_session(1, profile, {}, &global_sid));
  EXPECT_FALSE(feeder.open_session(1, profile, {}, &global_sid));
  expect_daemon_alive();
}

TEST_F(DaemonTest, OrphanedSessionsAreReaped) {
  {
    Client feeder = Client::connect(socket_path_, Role::kFeeder);
    ASSERT_TRUE(feeder.ok()) << feeder.error();
    std::uint64_t global_sid = 0;
    const auto profile = core::testing::synthetic_profile(2);
    ASSERT_TRUE(feeder.open_session(1, profile, {}, &global_sid));
    ASSERT_TRUE(feeder.open_session(2, profile, {}, &global_sid));
    EXPECT_EQ(daemon_->fleet().session_count(), 2u);
    feeder.close();  // vanish without kCloseSession
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon_->fleet().session_count() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(daemon_->fleet().session_count(), 0u);
  expect_daemon_alive();
}

// ------------------------------------------------------- backpressure

class DaemonBackpressureTest
    : public DaemonTest,
      public ::testing::WithParamInterface<engine::OverloadPolicy> {};

TEST_P(DaemonBackpressureTest, SlowSubscriberNeverStallsTheTickLoop) {
  // A subscriber with a 2-deep queue that NEVER reads. Once the kernel
  // socket buffer fills, the writer thread wedges in send_all, the
  // queue hits capacity, and the overload policy must shed — visibly,
  // in the daemon's drop/timeout counters — while the tick loop keeps
  // serving (kBlock's wait is bounded by block_timeout_ms).
  Client sub = Client::connect(socket_path_, Role::kSubscriber);
  ASSERT_TRUE(sub.ok()) << sub.error();
  SubscribeRequest req;
  req.has_policy = true;
  req.policy = static_cast<std::uint8_t>(GetParam());
  req.capacity = 2;
  ASSERT_TRUE(sub.subscribe(req));

  Client feeder = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(feeder.ok()) << feeder.error();
  // Enough sessions to make each kResults frame kilobytes — the socket
  // buffer must fill within a bounded number of ticks.
  const auto profile = core::testing::synthetic_profile(2);
  for (std::uint64_t sid = 1; sid <= 16; ++sid) {
    std::uint64_t global_sid = 0;
    ASSERT_TRUE(feeder.open_session(sid, profile, {}, &global_sid));
  }

  const auto shed = [&] {
    const auto& d = daemon_->sink().daemon;
    return d.sub_dropped_oldest.value() + d.sub_dropped_newest.value() +
           d.sub_block_timeouts.value();
  };
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < 4000 && shed() == 0; ++k) {
    ASSERT_TRUE(feeder.send_tick(0.01 * (k + 1)));
  }
  EXPECT_GT(shed(), 0u) << "unread subscriber never overflowed";
  // Round-trip through a control client proves the daemon still serves.
  expect_daemon_alive();
  // A stalled tick loop hangs forever; anything bounded passes. 60s of
  // slack keeps this meaningful but unflaky on slow CI.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(60));
}

INSTANTIATE_TEST_SUITE_P(Policies, DaemonBackpressureTest,
                         ::testing::Values(engine::OverloadPolicy::kBlock,
                                           engine::OverloadPolicy::kDropOldest,
                                           engine::OverloadPolicy::kDropNewest));

// --------------------------------------------------------------- churn

TEST_F(DaemonTest, SubscribeUnsubscribeChurnUnderLoad) {
  // Subscribers connecting/leaving (both politely and by vanishing)
  // while a feeder drives ticks: no crash, no stall, and the daemon
  // ends with zero registered subscribers.
  std::atomic<bool> stop{false};
  std::thread feeder_thread([&] {
    Client feeder = Client::connect(socket_path_, Role::kFeeder);
    if (!feeder.ok()) return;
    std::uint64_t global_sid = 0;
    if (!feeder.open_session(1, core::testing::synthetic_profile(2), {},
                             &global_sid)) {
      return;
    }
    double t = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      if (!feeder.send_tick(t += 0.01)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    feeder.close_session(1);
  });

  std::vector<std::thread> churners;
  for (int c = 0; c < 3; ++c) {
    churners.emplace_back([&, c] {
      for (int round = 0; round < 15; ++round) {
        Client sub = Client::connect(socket_path_, Role::kSubscriber);
        if (!sub.ok()) continue;
        if (!sub.subscribe()) continue;
        (void)sub.next_results(200);
        if ((round + c) % 2 == 0) {
          sub.unsubscribe();  // polite leave
        }
        sub.close();  // or just vanish
      }
    });
  }
  for (std::thread& t : churners) t.join();
  stop.store(true, std::memory_order_release);
  feeder_thread.join();

  expect_daemon_alive();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon_->subscriber_count() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(daemon_->subscriber_count(), 0u);
}

// ------------------------------------------------------------ shutdown

TEST_F(DaemonTest, ControlShutdownDrainsSubscribersWithBye) {
  Client sub = Client::connect(socket_path_, Role::kSubscriber);
  ASSERT_TRUE(sub.ok()) << sub.error();
  ASSERT_TRUE(sub.subscribe());

  Client feeder = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(feeder.ok()) << feeder.error();
  open_and_tick(feeder);
  ASSERT_TRUE(sub.next_results().has_value()) << sub.error();

  Client control = Client::connect(socket_path_, Role::kControl);
  ASSERT_TRUE(control.ok()) << control.error();
  EXPECT_TRUE(control.shutdown_daemon()) << control.error();
  serve_thread_.join();

  // The drain ends the subscriber's stream with an explicit kBye.
  while (sub.next_results(2000).has_value()) {
  }
  EXPECT_TRUE(sub.saw_bye());

  // Socket unlinked: nothing is listening anymore.
  EXPECT_FALSE(std::filesystem::exists(socket_path_));
}

TEST_F(DaemonTest, ShutdownRejectsNewSessions) {
  Client feeder = Client::connect(socket_path_, Role::kFeeder);
  ASSERT_TRUE(feeder.ok()) << feeder.error();
  daemon_->request_shutdown();
  serve_thread_.join();
  // Whatever the teardown race delivered (error frame or EOF), the open
  // must FAIL — no session may be created during a drain.
  std::uint64_t global_sid = 0;
  EXPECT_FALSE(feeder.open_session(1, core::testing::synthetic_profile(2), {},
                                   &global_sid, /*timeout_ms=*/2000));
}

}  // namespace
}  // namespace vihot::daemon
