// Daemon wire-protocol robustness (ctest label: daemon).
//
// The FrameParser sits on an UNTRUSTED byte stream: anything a client
// can put on the socket — truncation, bit flips, hostile length fields,
// garbage — must either yield a CRC-verified frame or poison the parser
// (failed()), never crash, over-allocate, or yield a corrupt frame.
// The codec tests pin the payload layouts: a profile/TrackerConfig/
// TrackResult on the wire must be the SAME bytes as in a .vrlog, which
// is what the end-to-end bit-identity gate relies on.
#include "daemon/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "replay/vrlog.h"
#include "tests/core/test_helpers.h"

namespace vihot::daemon {
namespace {

std::vector<unsigned char> frame_of(MsgType type,
                                    const std::vector<unsigned char>& payload) {
  std::vector<unsigned char> out;
  append_frame(out, type, payload);
  return out;
}

std::vector<unsigned char> some_payload(std::size_t n) {
  std::vector<unsigned char> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<unsigned char>((i * 131) & 0xFF);
  }
  return p;
}

// ------------------------------------------------------------ framing

TEST(FrameParser, RoundTripsSingleFrame) {
  const auto payload = some_payload(37);
  const auto bytes = frame_of(MsgType::kCsi, payload);
  EXPECT_EQ(bytes.size(), payload.size() + frame_overhead());

  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  const auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kCsi);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_FALSE(parser.failed());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, RoundTripsEmptyPayload) {
  const auto bytes = frame_of(MsgType::kBye, {});
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  const auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kBye);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameParser, ReassemblesByteAtATime) {
  // A frame dribbled in 1-byte reads must assemble identically — the
  // socket makes no delivery-boundary promises.
  std::vector<unsigned char> bytes;
  append_frame(bytes, MsgType::kTick, some_payload(8));
  append_frame(bytes, MsgType::kImu, some_payload(61));

  FrameParser parser;
  std::vector<Frame> got;
  for (const unsigned char b : bytes) {
    parser.feed(&b, 1);
    while (auto f = parser.next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, MsgType::kTick);
  EXPECT_EQ(got[0].payload.size(), 8u);
  EXPECT_EQ(got[1].type, MsgType::kImu);
  EXPECT_EQ(got[1].payload, some_payload(61));
  EXPECT_FALSE(parser.failed());
}

TEST(FrameParser, TruncatedFrameIsNotAnError) {
  // A half-delivered frame is just "not yet" — only corruption poisons.
  const auto bytes = frame_of(MsgType::kCsi, some_payload(100));
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size() / 2);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_FALSE(parser.failed());
  parser.feed(bytes.data() + bytes.size() / 2, bytes.size() - bytes.size() / 2);
  EXPECT_TRUE(parser.next().has_value());
}

TEST(FrameParser, CrcCorruptionPoisonsTheStream) {
  for (std::size_t flip : {0u, 10u, 40u}) {  // type, payload, CRC bytes
    auto bytes = frame_of(MsgType::kCsi, some_payload(32));
    bytes[flip] ^= 0x40;
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(parser.next().has_value()) << "flip at " << flip;
    EXPECT_TRUE(parser.failed()) << "flip at " << flip;
    EXPECT_FALSE(parser.error().empty());
    // Poisoned parsers stay poisoned: feeding a pristine frame after
    // the fault must not resurrect the stream.
    const auto good = frame_of(MsgType::kTick, some_payload(8));
    parser.feed(good.data(), good.size());
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_TRUE(parser.failed());
  }
}

TEST(FrameParser, CorruptLengthFailsOnceTheFakeFrameArrives) {
  // Flipping a LENGTH bit (within the payload cap) is indistinguishable
  // from a longer frame until that many bytes arrive — then the CRC,
  // which covers the length field, must catch it.
  auto bytes = frame_of(MsgType::kCsi, some_payload(32));
  bytes[5] ^= 0x40;  // length 32 -> 16416, still under the cap
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_FALSE(parser.failed());  // still plausibly mid-frame
  const std::vector<unsigned char> filler(17000, 0);
  parser.feed(filler.data(), filler.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParser, OversizedLengthRejectedBeforeAllocation) {
  // A hostile length field must fail from the HEADER alone — the parser
  // may never wait for (or try to buffer) gigabytes of payload.
  std::vector<unsigned char> bytes;
  replay::put_u32(bytes, static_cast<std::uint32_t>(MsgType::kCsi));
  replay::put_u32(bytes, 0xFFFFFFFFu);
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParser, HonorsCustomPayloadCap) {
  const auto bytes = frame_of(MsgType::kCsi, some_payload(64));
  FrameParser strict(/*max_payload=*/16);
  strict.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(strict.next().has_value());
  EXPECT_TRUE(strict.failed());
}

TEST(FrameParser, GarbageBytesPoisonViaCrc) {
  std::vector<unsigned char> junk(64, 0xAB);
  FrameParser parser;
  parser.feed(junk.data(), junk.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParser, SustainedStreamCompactsItsBuffer) {
  // Long-lived feeder connections stream forever; the internal buffer
  // must not grow with total traffic, only with the unread tail.
  const auto bytes = frame_of(MsgType::kImu, some_payload(256));
  FrameParser parser;
  for (int k = 0; k < 2000; ++k) {
    parser.feed(bytes.data(), bytes.size());
    ASSERT_TRUE(parser.next().has_value());
  }
  EXPECT_FALSE(parser.failed());
  EXPECT_EQ(parser.buffered(), 0u);
}

// ------------------------------------------------------------- codecs

TEST(ProtocolCodec, HelloRoundTrip) {
  std::vector<unsigned char> bytes;
  encode_hello(bytes, Role::kSubscriber);
  replay::Cursor in(bytes.data(), bytes.size());
  std::uint32_t version = 0;
  Role role = Role::kFeeder;
  ASSERT_TRUE(decode_hello(in, &version, &role));
  EXPECT_EQ(version, kProtocolVersion);
  EXPECT_EQ(role, Role::kSubscriber);
}

TEST(ProtocolCodec, OpenSessionCarriesVrlogProfileBytes) {
  // The profile inside kOpenSession must be the flight-recorder
  // encoding verbatim: same codec, same bytes.
  const core::CsiProfile profile = core::testing::synthetic_profile(2);
  core::TrackerConfig config;
  config.camera_staleness_s = 0.125;

  std::vector<unsigned char> bytes;
  encode_open_session(bytes, 77, profile, config);

  std::vector<unsigned char> raw_profile;
  replay::encode_profile(raw_profile, profile);
  ASSERT_GT(bytes.size(), raw_profile.size() + 8);
  EXPECT_EQ(std::memcmp(bytes.data() + 8, raw_profile.data(),
                        raw_profile.size()),
            0);

  replay::Cursor in(bytes.data(), bytes.size());
  std::uint64_t sid = 0;
  core::CsiProfile got_profile;
  core::TrackerConfig got_config;
  ASSERT_TRUE(decode_open_session(in, &sid, &got_profile, &got_config));
  EXPECT_EQ(sid, 77u);
  EXPECT_EQ(got_profile.positions.size(), profile.positions.size());
  EXPECT_DOUBLE_EQ(got_config.camera_staleness_s, 0.125);
}

TEST(ProtocolCodec, SessionAckRoundTrip) {
  std::vector<unsigned char> bytes;
  encode_session_ack(bytes, 5, 1234567890123ull);
  replay::Cursor in(bytes.data(), bytes.size());
  std::uint64_t client_sid = 0;
  std::uint64_t global_sid = 0;
  ASSERT_TRUE(decode_session_ack(in, &client_sid, &global_sid));
  EXPECT_EQ(client_sid, 5u);
  EXPECT_EQ(global_sid, 1234567890123ull);
}

TEST(ProtocolCodec, SubscribeRoundTripAndPolicyValidation) {
  SubscribeRequest req;
  req.has_policy = true;
  req.policy = 2;  // kDropNewest
  req.capacity = 9;
  std::vector<unsigned char> bytes;
  encode_subscribe(bytes, req);
  replay::Cursor in(bytes.data(), bytes.size());
  SubscribeRequest got;
  ASSERT_TRUE(decode_subscribe(in, &got));
  EXPECT_TRUE(got.has_policy);
  EXPECT_EQ(got.policy, 2);
  EXPECT_EQ(got.capacity, 9u);

  // An out-of-range policy byte must be rejected at decode time, not
  // cast blindly into the engine enum.
  req.policy = 3;
  bytes.clear();
  encode_subscribe(bytes, req);
  replay::Cursor bad(bytes.data(), bytes.size());
  EXPECT_FALSE(decode_subscribe(bad, &got));
}

TEST(ProtocolCodec, ResultsRoundTripBitExact) {
  core::TrackResult r0;
  r0.valid = true;
  r0.t = 1.25;
  r0.theta_rad = -0.375;
  core::TrackResult r1;  // default/invalid entry must survive too
  const core::TrackResult results[] = {r0, r1};
  const std::uint64_t ids[] = {42, 7};

  std::vector<unsigned char> bytes;
  encode_results(bytes, 2.5, ids, results, 2);
  replay::Cursor in(bytes.data(), bytes.size());
  ResultsFrame frame;
  ASSERT_TRUE(decode_results(in, &frame));
  EXPECT_EQ(frame.t_now, 2.5);
  ASSERT_EQ(frame.ids.size(), 2u);
  EXPECT_EQ(frame.ids[0], 42u);
  EXPECT_EQ(frame.ids[1], 7u);
  ASSERT_EQ(frame.results.size(), 2u);

  // Bit-exactness contract: re-encoding the decoded results reproduces
  // the original bytes (the comparison the verify gate performs).
  for (std::size_t k = 0; k < 2; ++k) {
    std::vector<unsigned char> a;
    std::vector<unsigned char> b;
    replay::encode_track_result(a, results[k]);
    replay::encode_track_result(b, frame.results[k]);
    EXPECT_EQ(a, b) << "result " << k;
  }
}

TEST(ProtocolCodec, ResultsDecodeRejectsTruncation) {
  core::TrackResult r;
  r.valid = true;
  const std::uint64_t id = 1;
  std::vector<unsigned char> bytes;
  encode_results(bytes, 0.5, &id, &r, 1);
  // Every strict prefix must fail cleanly (no partial frames).
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    replay::Cursor in(bytes.data(), bytes.size() - cut);
    ResultsFrame frame;
    EXPECT_FALSE(decode_results(in, &frame)) << "cut " << cut;
  }
}

TEST(ProtocolCodec, ResultsDecodeBoundsCountByPayload) {
  // A forged header claiming 2^32 results over a tiny payload must be
  // rejected before any reserve() — mirror of the oversized-length case.
  std::vector<unsigned char> bytes;
  replay::put_f64(bytes, 0.0);
  replay::put_u64(bytes, 0xFFFFFFFFull);  // absurd count, empty body
  replay::Cursor in(bytes.data(), bytes.size());
  ResultsFrame frame;
  EXPECT_FALSE(decode_results(in, &frame));
}

TEST(ProtocolCodec, ErrorRoundTrip) {
  std::vector<unsigned char> bytes;
  encode_error(bytes, ErrorCode::kUnknownSession, "sid 9 never opened");
  replay::Cursor in(bytes.data(), bytes.size());
  ErrorCode code{};
  std::string message;
  ASSERT_TRUE(decode_error(in, &code, &message));
  EXPECT_EQ(code, ErrorCode::kUnknownSession);
  EXPECT_EQ(message, "sid 9 never opened");
}

}  // namespace
}  // namespace vihot::daemon
