#include "dsp/dtw.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace vihot::dsp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> sine(int n, double period, double phase = 0.0) {
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) {
    xs.push_back(std::sin(2.0 * 3.14159265 * i / period + phase));
  }
  return xs;
}

TEST(DtwTest, IdenticalSeriesZeroDistance) {
  const auto a = sine(50, 20.0);
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(dtw_distance_normalized(a, a), 0.0);
}

TEST(DtwTest, EmptyInputIsInfinite) {
  const std::vector<double> a = {1.0, 2.0};
  EXPECT_EQ(dtw_distance(a, {}), kInf);
  EXPECT_EQ(dtw_distance({}, a), kInf);
}

TEST(DtwTest, SingleElementPairs) {
  const std::vector<double> a = {2.0};
  const std::vector<double> b = {5.0};
  EXPECT_DOUBLE_EQ(dtw_distance(a, b), 9.0);
}

TEST(DtwTest, AbsorbsTimeStretching) {
  // The same sine at double the sampling: DTW distance should be far
  // smaller than the Euclidean-style distance to a different signal.
  const auto slow = sine(80, 40.0);
  const auto fast = sine(40, 20.0);
  const auto other = sine(40, 7.0);
  EXPECT_LT(dtw_distance(fast, slow), dtw_distance(fast, other));
  EXPECT_LT(dtw_distance(fast, slow), 1.0);
}

TEST(DtwTest, SymmetricDistance) {
  const auto a = sine(30, 11.0);
  const auto b = sine(45, 17.0, 0.5);
  EXPECT_NEAR(dtw_distance(a, b), dtw_distance(b, a), 1e-9);
}

TEST(DtwTest, TriangleOffsetGrowsDistance) {
  const auto a = sine(40, 20.0);
  auto b = a;
  for (double& v : b) v += 0.5;
  auto c = a;
  for (double& v : c) v += 1.0;
  EXPECT_LT(dtw_distance(a, b), dtw_distance(a, c));
}

TEST(DtwTest, EarlyAbandonReturnsInfinity) {
  const auto a = sine(40, 20.0);
  auto b = a;
  for (double& v : b) v += 2.0;
  DtwOptions opt;
  opt.abandon_above = 1.0;  // true distance is 40 * 4 = 160
  EXPECT_EQ(dtw_distance(a, b, opt), kInf);
}

TEST(DtwTest, EarlyAbandonKeepsGoodMatches) {
  const auto a = sine(40, 20.0);
  DtwOptions opt;
  opt.abandon_above = 1.0;
  EXPECT_DOUBLE_EQ(dtw_distance(a, a, opt), 0.0);
}

TEST(DtwTest, BandRestrictsWarp) {
  // With a full band the warp absorbs the stretch; with a tiny band the
  // alignment is near-diagonal and the distance grows.
  const auto slow = sine(80, 40.0);
  const auto fast = sine(40, 20.0);
  DtwOptions narrow;
  narrow.band_fraction = 0.02;
  DtwOptions full;
  full.band_fraction = 1.0;
  EXPECT_GE(dtw_distance(fast, slow, narrow),
            dtw_distance(fast, slow, full));
}

TEST(DtwTest, BandAlwaysReachesEndCell) {
  // Even a zero-width band must cover the diagonal slope mismatch.
  const auto a = sine(10, 5.0);
  const auto b = sine(37, 5.0);
  DtwOptions opt;
  opt.band_fraction = 0.0;
  EXPECT_LT(dtw_distance(a, b, opt), kInf);
}

TEST(DtwTest, NormalizedDividesBySizes) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {1.0, 1.0};
  const double raw = dtw_distance(a, b);
  EXPECT_DOUBLE_EQ(dtw_distance_normalized(a, b), raw / 4.0);
}

TEST(DtwAlignTest, PathEndpointsAndMonotonicity) {
  const auto a = sine(20, 10.0);
  const auto b = sine(30, 15.0);
  const DtwAlignment al = dtw_align(a, b);
  ASSERT_FALSE(al.path.empty());
  EXPECT_EQ(al.path.front().first, 0u);
  EXPECT_EQ(al.path.front().second, 0u);
  EXPECT_EQ(al.path.back().first, a.size() - 1);
  EXPECT_EQ(al.path.back().second, b.size() - 1);
  for (std::size_t k = 1; k < al.path.size(); ++k) {
    EXPECT_GE(al.path[k].first, al.path[k - 1].first);
    EXPECT_GE(al.path[k].second, al.path[k - 1].second);
    const std::size_t step = (al.path[k].first - al.path[k - 1].first) +
                             (al.path[k].second - al.path[k - 1].second);
    EXPECT_GE(step, 1u);
    EXPECT_LE(step, 2u);
  }
}

TEST(DtwAlignTest, DistanceMatchesDtwDistance) {
  const auto a = sine(25, 12.0);
  const auto b = sine(35, 9.0, 1.0);
  EXPECT_NEAR(dtw_align(a, b).distance, dtw_distance(a, b), 1e-9);
}

TEST(DtwLowerBoundTest, NeverExceedsTrueDistance) {
  const auto a = sine(30, 13.0);
  for (double period : {7.0, 11.0, 23.0}) {
    for (double phase : {0.0, 0.7, 2.0}) {
      const auto b = sine(40, period, phase);
      EXPECT_LE(dtw_lower_bound(a, b), dtw_distance(a, b) + 1e-12)
          << "period=" << period << " phase=" << phase;
    }
  }
}

TEST(DtwLowerBoundTest, EmptyIsInfinite) {
  EXPECT_EQ(dtw_lower_bound({}, std::vector<double>{1.0}), kInf);
}

// Property: distance to a shifted copy grows monotonically with shift.
class DtwShiftProperty : public ::testing::TestWithParam<double> {};

TEST_P(DtwShiftProperty, MonotoneInOffset) {
  const auto a = sine(30, 15.0);
  const double s = GetParam();
  auto near = a;
  auto far = a;
  for (double& v : near) v += s;
  for (double& v : far) v += s + 0.5;
  EXPECT_LE(dtw_distance(a, near), dtw_distance(a, far));
}

INSTANTIATE_TEST_SUITE_P(Offsets, DtwShiftProperty,
                         ::testing::Values(0.0, 0.1, 0.3, 0.8, 1.5));

std::vector<double> random_series(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> xs(n);
  for (double& v : xs) v = dist(rng);
  return xs;
}

// Textbook full-table DTW with no band and no abandoning: the ground
// truth the banded rolling-row kernel must reproduce when the band is
// disabled. Same local cost and same min-then-add per cell, so the
// floating-point results must agree exactly, not just approximately.
double full_dp_reference(const std::vector<double>& a,
                         const std::vector<double>& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::vector<double>> dp(n + 1,
                                      std::vector<double>(m + 1, kInf));
  dp[0][0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const double best_prev =
          std::min({dp[i - 1][j], dp[i - 1][j - 1], dp[i][j - 1]});
      if (best_prev == kInf) continue;
      const double d = a[i - 1] - b[j - 1];
      dp[i][j] = best_prev + d * d;
    }
  }
  return dp[n][m];
}

// Property: with band_fraction = 1.0 the banded kernel IS full DTW.
TEST(DtwFullDpProperty, UnbandedKernelMatchesReference) {
  const std::size_t sizes[][2] = {{1, 1},  {1, 17},  {17, 1},  {2, 2},
                                  {5, 5},  {23, 40}, {40, 23}, {64, 64}};
  DtwOptions full;
  full.band_fraction = 1.0;
  for (const auto& s : sizes) {
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
      const auto a = random_series(s[0], seed);
      const auto b = random_series(s[1], seed + 100);
      EXPECT_EQ(dtw_distance(a, b, full), full_dp_reference(a, b))
          << "n=" << s[0] << " m=" << s[1] << " seed=" << seed;
    }
  }
}

TEST(DtwTest, BufferedVariantIsBitIdentical) {
  const auto a = random_series(31, 7);
  const auto b = random_series(44, 8);
  DtwOptions opt;
  opt.band_fraction = 0.25;
  DtwBuffers buffers;
  EXPECT_EQ(dtw_distance_buffered(a, b, opt, buffers),
            dtw_distance(a, b, opt));
  // Reused (dirty) buffers must not change the result.
  EXPECT_EQ(dtw_distance_buffered(b, a, opt, buffers),
            dtw_distance(b, a, opt));
}

// The pre-fix banded kernel: full-row std::fill per DP row, three-way
// min-then-add per cell. The span-clearing kernels (scalar row-major
// and AVX2 anti-diagonal alike) must reproduce it bit-for-bit — this is
// the regression gate for the "clear only written spans" fix.
double banded_reference(const std::vector<double>& a,
                        const std::vector<double>& b,
                        const DtwOptions& options) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return kInf;
  const std::size_t band = dtw_band_cells(options, n, m);
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const auto diag = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(m) /
        static_cast<double>(n));
    const std::size_t j_lo = (diag > band) ? diag - band : 1;
    const std::size_t j_hi = std::min(m, diag + band);
    double row_min = kInf;
    for (std::size_t j = std::max<std::size_t>(j_lo, 1); j <= j_hi; ++j) {
      const double best_prev =
          std::min({prev[j], prev[j - 1], curr[j - 1]});
      if (best_prev == kInf) continue;
      const double d = a[i - 1] - b[j - 1];
      curr[j] = best_prev + d * d;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > options.abandon_above) return kInf;
    std::swap(prev, curr);
  }
  return prev[m];
}

// Property: the span-clearing kernel matches the historical full-clear
// kernel exactly, across band widths, shapes, and dirty buffer reuse
// (shrinking m after a wider problem is what exposes stale cells).
TEST(DtwBandedClearProperty, SpanClearingMatchesFullClearReference) {
  const std::size_t sizes[][2] = {{1, 1},  {1, 17}, {17, 1},  {2, 2},
                                  {40, 8}, {8, 40}, {64, 64}, {80, 30}};
  DtwBuffers buffers;  // shared across ALL cases: stale spans everywhere
  for (const double frac : {0.0, 0.05, 0.3, 1.0}) {
    DtwOptions opt;
    opt.band_fraction = frac;
    for (const auto& s : sizes) {
      for (std::uint32_t seed = 1; seed <= 3; ++seed) {
        const auto a = random_series(s[0], seed);
        const auto b = random_series(s[1], seed + 100);
        EXPECT_EQ(dtw_distance_buffered(a, b, opt, buffers),
                  banded_reference(a, b, opt))
            << "frac=" << frac << " n=" << s[0] << " m=" << s[1]
            << " seed=" << seed;
      }
    }
  }
}

// Abandoning mid-way leaves buffers dirty in a different pattern than a
// completed run; the next call must still be exact.
TEST(DtwBandedClearProperty, AbandonedRunDoesNotPoisonBuffers) {
  const auto a = random_series(48, 3);
  auto far = a;
  for (double& v : far) v += 3.0;
  DtwOptions opt;
  opt.band_fraction = 0.1;
  opt.abandon_above = 1.0;
  DtwBuffers buffers;
  EXPECT_EQ(dtw_distance_buffered(a, far, opt, buffers), kInf);
  DtwOptions open;
  open.band_fraction = 0.1;
  const auto b = random_series(32, 4);
  EXPECT_EQ(dtw_distance_buffered(a, b, open, buffers),
            banded_reference(a, b, open));
}

TEST(DtwTest, LengthOneAgainstLongerSumsAllCosts) {
  // A single-sample series must align with every sample of the other
  // side, so the distance is the plain sum of squared differences.
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {0.0, 2.0, 3.0};
  const double expected = 1.0 + 1.0 + 4.0;
  EXPECT_DOUBLE_EQ(dtw_distance(a, b), expected);
  EXPECT_DOUBLE_EQ(dtw_distance(b, a), expected);
  EXPECT_EQ(dtw_distance(a, b), full_dp_reference(a, b));
}

TEST(DtwAlignTest, LengthOneQuerySweepsAllColumns) {
  const std::vector<double> a = {0.5};
  const auto b = sine(9, 4.0);
  const DtwAlignment al = dtw_align(a, b);
  ASSERT_EQ(al.path.size(), b.size());
  for (std::size_t k = 0; k < al.path.size(); ++k) {
    EXPECT_EQ(al.path[k].first, 0u);
    EXPECT_EQ(al.path[k].second, k);
  }
  EXPECT_NEAR(al.distance, dtw_distance(a, b), 1e-12);
}

TEST(DtwTest, SlopeGapWidensZeroBand) {
  // n >> m: the requested band of 0 cells must be widened to the |n - m|
  // slope gap or the end cell is unreachable.
  const auto a = sine(120, 30.0);
  const auto b = sine(5, 30.0);
  DtwOptions opt;
  opt.band_fraction = 0.0;
  EXPECT_GE(dtw_band_cells(opt, a.size(), b.size()), a.size() - b.size());
  EXPECT_LT(dtw_distance(a, b, opt), kInf);
  EXPECT_LT(dtw_distance(b, a, opt), kInf);
}

TEST(DtwAlignTest, HonorsAbandonAbove) {
  const auto a = sine(40, 20.0);
  auto far = a;
  for (double& v : far) v += 2.0;
  DtwOptions opt;
  opt.abandon_above = 1.0;  // true distance is 40 * 4 = 160
  const DtwAlignment abandoned = dtw_align(a, far, opt);
  EXPECT_EQ(abandoned.distance, kInf);
  EXPECT_TRUE(abandoned.path.empty());
  // The same threshold must keep a good match intact, matching
  // dtw_distance under the same options.
  const DtwAlignment kept = dtw_align(a, a, opt);
  EXPECT_DOUBLE_EQ(kept.distance, 0.0);
  ASSERT_FALSE(kept.path.empty());
  EXPECT_EQ(kept.path.size(), a.size());
}

// Regression (band-border backtrack): with a narrow band and a large
// slope gap most of the DP table is infinite; the backtrack must
// terminate at (0, 0) having stepped only through in-band (finite)
// cells instead of drifting into kInf territory.
TEST(DtwAlignTest, BandBorderBacktrackStaysInsideBand) {
  const auto a = sine(10, 5.0);
  const auto b = sine(37, 5.0);
  DtwOptions opt;
  opt.band_fraction = 0.0;  // widened to the slope gap only
  const DtwAlignment al = dtw_align(a, b, opt);
  ASSERT_FALSE(al.path.empty());
  EXPECT_EQ(al.path.front().first, 0u);
  EXPECT_EQ(al.path.front().second, 0u);
  EXPECT_EQ(al.path.back().first, a.size() - 1);
  EXPECT_EQ(al.path.back().second, b.size() - 1);
  EXPECT_NEAR(al.distance, dtw_distance(a, b, opt), 1e-12);
  const std::size_t band = dtw_band_cells(opt, a.size(), b.size());
  for (const auto& [pi, pj] : al.path) {
    // Same diagonal/band geometry as the kernel (1-based DP indices).
    const std::size_t i = pi + 1;
    const std::size_t j = pj + 1;
    const auto diag = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(b.size()) /
        static_cast<double>(a.size()));
    const std::size_t j_lo = std::max<std::size_t>(
        (diag > band) ? diag - band : 1, 1);
    const std::size_t j_hi = std::min(b.size(), diag + band);
    EXPECT_GE(j, j_lo) << "path cell (" << pi << "," << pj << ")";
    EXPECT_LE(j, j_hi) << "path cell (" << pi << "," << pj << ")";
  }
}

}  // namespace
}  // namespace vihot::dsp
