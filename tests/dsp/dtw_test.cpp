#include "dsp/dtw.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vihot::dsp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> sine(int n, double period, double phase = 0.0) {
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) {
    xs.push_back(std::sin(2.0 * 3.14159265 * i / period + phase));
  }
  return xs;
}

TEST(DtwTest, IdenticalSeriesZeroDistance) {
  const auto a = sine(50, 20.0);
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(dtw_distance_normalized(a, a), 0.0);
}

TEST(DtwTest, EmptyInputIsInfinite) {
  const std::vector<double> a = {1.0, 2.0};
  EXPECT_EQ(dtw_distance(a, {}), kInf);
  EXPECT_EQ(dtw_distance({}, a), kInf);
}

TEST(DtwTest, SingleElementPairs) {
  const std::vector<double> a = {2.0};
  const std::vector<double> b = {5.0};
  EXPECT_DOUBLE_EQ(dtw_distance(a, b), 9.0);
}

TEST(DtwTest, AbsorbsTimeStretching) {
  // The same sine at double the sampling: DTW distance should be far
  // smaller than the Euclidean-style distance to a different signal.
  const auto slow = sine(80, 40.0);
  const auto fast = sine(40, 20.0);
  const auto other = sine(40, 7.0);
  EXPECT_LT(dtw_distance(fast, slow), dtw_distance(fast, other));
  EXPECT_LT(dtw_distance(fast, slow), 1.0);
}

TEST(DtwTest, SymmetricDistance) {
  const auto a = sine(30, 11.0);
  const auto b = sine(45, 17.0, 0.5);
  EXPECT_NEAR(dtw_distance(a, b), dtw_distance(b, a), 1e-9);
}

TEST(DtwTest, TriangleOffsetGrowsDistance) {
  const auto a = sine(40, 20.0);
  auto b = a;
  for (double& v : b) v += 0.5;
  auto c = a;
  for (double& v : c) v += 1.0;
  EXPECT_LT(dtw_distance(a, b), dtw_distance(a, c));
}

TEST(DtwTest, EarlyAbandonReturnsInfinity) {
  const auto a = sine(40, 20.0);
  auto b = a;
  for (double& v : b) v += 2.0;
  DtwOptions opt;
  opt.abandon_above = 1.0;  // true distance is 40 * 4 = 160
  EXPECT_EQ(dtw_distance(a, b, opt), kInf);
}

TEST(DtwTest, EarlyAbandonKeepsGoodMatches) {
  const auto a = sine(40, 20.0);
  DtwOptions opt;
  opt.abandon_above = 1.0;
  EXPECT_DOUBLE_EQ(dtw_distance(a, a, opt), 0.0);
}

TEST(DtwTest, BandRestrictsWarp) {
  // With a full band the warp absorbs the stretch; with a tiny band the
  // alignment is near-diagonal and the distance grows.
  const auto slow = sine(80, 40.0);
  const auto fast = sine(40, 20.0);
  DtwOptions narrow;
  narrow.band_fraction = 0.02;
  DtwOptions full;
  full.band_fraction = 1.0;
  EXPECT_GE(dtw_distance(fast, slow, narrow),
            dtw_distance(fast, slow, full));
}

TEST(DtwTest, BandAlwaysReachesEndCell) {
  // Even a zero-width band must cover the diagonal slope mismatch.
  const auto a = sine(10, 5.0);
  const auto b = sine(37, 5.0);
  DtwOptions opt;
  opt.band_fraction = 0.0;
  EXPECT_LT(dtw_distance(a, b, opt), kInf);
}

TEST(DtwTest, NormalizedDividesBySizes) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {1.0, 1.0};
  const double raw = dtw_distance(a, b);
  EXPECT_DOUBLE_EQ(dtw_distance_normalized(a, b), raw / 4.0);
}

TEST(DtwAlignTest, PathEndpointsAndMonotonicity) {
  const auto a = sine(20, 10.0);
  const auto b = sine(30, 15.0);
  const DtwAlignment al = dtw_align(a, b);
  ASSERT_FALSE(al.path.empty());
  EXPECT_EQ(al.path.front().first, 0u);
  EXPECT_EQ(al.path.front().second, 0u);
  EXPECT_EQ(al.path.back().first, a.size() - 1);
  EXPECT_EQ(al.path.back().second, b.size() - 1);
  for (std::size_t k = 1; k < al.path.size(); ++k) {
    EXPECT_GE(al.path[k].first, al.path[k - 1].first);
    EXPECT_GE(al.path[k].second, al.path[k - 1].second);
    const std::size_t step = (al.path[k].first - al.path[k - 1].first) +
                             (al.path[k].second - al.path[k - 1].second);
    EXPECT_GE(step, 1u);
    EXPECT_LE(step, 2u);
  }
}

TEST(DtwAlignTest, DistanceMatchesDtwDistance) {
  const auto a = sine(25, 12.0);
  const auto b = sine(35, 9.0, 1.0);
  EXPECT_NEAR(dtw_align(a, b).distance, dtw_distance(a, b), 1e-9);
}

TEST(DtwLowerBoundTest, NeverExceedsTrueDistance) {
  const auto a = sine(30, 13.0);
  for (double period : {7.0, 11.0, 23.0}) {
    for (double phase : {0.0, 0.7, 2.0}) {
      const auto b = sine(40, period, phase);
      EXPECT_LE(dtw_lower_bound(a, b), dtw_distance(a, b) + 1e-12)
          << "period=" << period << " phase=" << phase;
    }
  }
}

TEST(DtwLowerBoundTest, EmptyIsInfinite) {
  EXPECT_EQ(dtw_lower_bound({}, std::vector<double>{1.0}), kInf);
}

// Property: distance to a shifted copy grows monotonically with shift.
class DtwShiftProperty : public ::testing::TestWithParam<double> {};

TEST_P(DtwShiftProperty, MonotoneInOffset) {
  const auto a = sine(30, 15.0);
  const double s = GetParam();
  auto near = a;
  auto far = a;
  for (double& v : near) v += s;
  for (double& v : far) v += s + 0.5;
  EXPECT_LE(dtw_distance(a, near), dtw_distance(a, far));
}

INSTANTIATE_TEST_SUITE_P(Offsets, DtwShiftProperty,
                         ::testing::Values(0.0, 0.1, 0.3, 0.8, 1.5));

}  // namespace
}  // namespace vihot::dsp
