#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angle.h"
#include "util/rng.h"

namespace vihot::dsp {
namespace {

TEST(FftTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(FftTest, DeltaTransformsToFlat) {
  std::vector<std::complex<double>> x(16, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const auto X = fft(x);
  for (const auto& v : X) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SinglToneLandsInItsBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> x(n);
  const int tone = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = util::kTwoPi * tone * static_cast<double>(i) /
                      static_cast<double>(n);
    x[i] = std::polar(1.0, ph);
  }
  const auto X = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = (k == tone) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(X[k]), expected, 1e-9) << "bin " << k;
  }
}

TEST(FftTest, RoundTrip) {
  util::Rng rng(5);
  std::vector<std::complex<double>> x(128);
  for (auto& v : x) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const auto y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(FftTest, ParsevalHolds) {
  util::Rng rng(7);
  std::vector<std::complex<double>> x(64);
  double e_time = 0.0;
  for (auto& v : x) {
    v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    e_time += std::norm(v);
  }
  const auto X = fft(x);
  double e_freq = 0.0;
  for (const auto& v : X) e_freq += std::norm(v);
  EXPECT_NEAR(e_freq / 64.0, e_time, 1e-9);
}

TEST(FftTest, LinearityOfFft) {
  util::Rng rng(9);
  std::vector<std::complex<double>> a(32);
  std::vector<std::complex<double>> b(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = {rng.normal(0.0, 1.0), 0.0};
    b[i] = {0.0, rng.normal(0.0, 1.0)};
  }
  std::vector<std::complex<double>> sum(32);
  for (std::size_t i = 0; i < 32; ++i) sum[i] = 2.0 * a[i] + b[i];
  const auto A = fft(a);
  const auto B = fft(b);
  const auto S = fft(sum);
  for (std::size_t k = 0; k < 32; ++k) {
    EXPECT_NEAR(std::abs(S[k] - (2.0 * A[k] + B[k])), 0.0, 1e-10);
  }
}

TEST(FftTest, PowerSpectrumFindsTone) {
  // 8 Hz tone sampled at 64 Hz for 2 s -> peak at bin 16 of a 128-pt FFT.
  std::vector<double> xs;
  for (int i = 0; i < 128; ++i) {
    xs.push_back(std::sin(util::kTwoPi * 8.0 * i / 64.0));
  }
  const auto spec = power_spectrum(xs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < spec.size(); ++k) {
    if (spec[k] > spec[peak]) peak = k;
  }
  EXPECT_EQ(peak, 16u);
}

}  // namespace
}  // namespace vihot::dsp
