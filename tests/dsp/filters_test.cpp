#include "dsp/filters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vihot::dsp {
namespace {

TEST(FiltersTest, MovingAveragePreservesConstant) {
  const std::vector<double> xs(20, 3.5);
  const auto out = moving_average(xs, 5);
  for (const double v : out) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(FiltersTest, MovingAverageSmoothsNoise) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back((i % 2 == 0) ? 1.0 : -1.0);  // alternating noise
  }
  const auto out = moving_average(xs, 9);
  for (std::size_t i = 10; i + 10 < out.size(); ++i) {
    EXPECT_LT(std::abs(out[i]), 0.2);
  }
}

TEST(FiltersTest, MovingAverageWindowOneIsIdentity) {
  const std::vector<double> xs = {1.0, 5.0, -2.0};
  EXPECT_EQ(moving_average(xs, 1), xs);
}

TEST(FiltersTest, MovingMedianRejectsSpike) {
  std::vector<double> xs(21, 1.0);
  xs[10] = 100.0;
  const auto out = moving_median(xs, 5);
  EXPECT_DOUBLE_EQ(out[10], 1.0);
}

TEST(FiltersTest, MovingMedianPreservesStep) {
  std::vector<double> xs(10, 0.0);
  xs.insert(xs.end(), 10, 1.0);
  const auto out = moving_median(xs, 3);
  EXPECT_DOUBLE_EQ(out.front(), 0.0);
  EXPECT_DOUBLE_EQ(out.back(), 1.0);
}

TEST(FiltersTest, ExponentialSmoothAlphaOneIsIdentity) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_EQ(exponential_smooth(xs, 1.0), xs);
}

TEST(FiltersTest, ExponentialSmoothConverges) {
  std::vector<double> xs(100, 10.0);
  xs[0] = 0.0;
  const auto out = exponential_smooth(xs, 0.2);
  EXPECT_NEAR(out.back(), 10.0, 0.01);
  // Monotone approach.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i], out[i - 1] - 1e-12);
  }
}

TEST(FiltersTest, HampelReplacesOutliers) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(std::sin(0.1 * i));
  xs[25] += 10.0;
  const auto res = hampel_filter(xs, 7, 3.0);
  EXPECT_EQ(res.replaced, 1u);
  EXPECT_LT(std::abs(res.values[25]), 1.5);
}

TEST(FiltersTest, HampelLeavesCleanDataAlone) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(std::sin(0.1 * i));
  const auto res = hampel_filter(xs, 7, 3.0);
  EXPECT_EQ(res.replaced, 0u);
  EXPECT_EQ(res.values, xs);
}

TEST(FiltersTest, ZNormalizeMoments) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(3.0 + 2.0 * std::sin(0.3 * i));
  const auto out = z_normalize(xs);
  double s = 0.0;
  double ss = 0.0;
  for (const double v : out) {
    s += v;
    ss += v * v;
  }
  EXPECT_NEAR(s / 100.0, 0.0, 1e-9);
  EXPECT_NEAR(std::sqrt(ss / 99.0), 1.0, 1e-9);
}

TEST(FiltersTest, ZNormalizeConstantGivesZeros) {
  const std::vector<double> xs(10, 4.2);
  for (const double v : z_normalize(xs)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FiltersTest, DiffBasics) {
  const std::vector<double> xs = {1.0, 4.0, 9.0};
  const auto d = diff(xs);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_TRUE(diff(std::vector<double>{1.0}).empty());
}

// Pins the edge ("ramp-up") semantics: the window is CENTERED and the
// first/last window/2 outputs use the clamped shorter neighborhood —
// not a trailing warm-up. A linear ramp makes every expected value
// closed-form: a centered run of k consecutive integers has sample
// stddev sqrt(sum of squared offsets / (k - 1)).
TEST(FiltersTest, RollingStddevRampUpRegionPinned) {
  std::vector<double> xs(10);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const auto out = rolling_stddev(xs, 5);  // half = 2
  ASSERT_EQ(out.size(), xs.size());
  const double sd3 = 1.0;                  // {a, a+1, a+2}
  const double sd4 = std::sqrt(5.0 / 3.0); // {a, .., a+3}
  const double sd5 = std::sqrt(2.5);       // {a, .., a+4}
  EXPECT_DOUBLE_EQ(out[0], sd3);  // clamped to [0, 2]
  EXPECT_DOUBLE_EQ(out[1], sd4);  // clamped to [0, 3]
  for (std::size_t i = 2; i + 2 < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], sd5) << "i=" << i;  // full [i-2, i+2]
  }
  EXPECT_DOUBLE_EQ(out[8], sd4);  // clamped to [6, 9]
  EXPECT_DOUBLE_EQ(out[9], sd3);  // clamped to [7, 9]
}

TEST(FiltersTest, RollingStddevSmallWindowReturnsZeros) {
  const std::vector<double> xs = {1.0, 7.0, -3.0};
  for (const double v : rolling_stddev(xs, 1)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FiltersTest, RollingStddevDetectsBurst) {
  std::vector<double> xs(40, 1.0);
  for (int i = 20; i < 30; ++i) xs[static_cast<std::size_t>(i)] =
      (i % 2 == 0) ? 3.0 : -1.0;
  const auto out = rolling_stddev(xs, 8);
  EXPECT_NEAR(out[10], 0.0, 1e-12);
  EXPECT_GT(out[28], 1.0);
}

}  // namespace
}  // namespace vihot::dsp
