#include "dsp/mdtw.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/dtw.h"

namespace vihot::dsp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Row-major 2D helix: (sin, cos) with slowly growing frequency.
std::vector<double> helix(int rows, double f0 = 0.15, double df = 0.0005) {
  std::vector<double> xs;
  double phase = 0.0;
  for (int i = 0; i < rows; ++i) {
    phase += f0 + df * i;
    xs.push_back(std::sin(phase));
    xs.push_back(std::cos(phase));
  }
  return xs;
}

TEST(MdtwTest, IdenticalSeriesZero) {
  const auto a = helix(60);
  EXPECT_DOUBLE_EQ(mdtw_distance(a, a, 2), 0.0);
}

TEST(MdtwTest, DegenerateInputsInfinite) {
  const auto a = helix(10);
  EXPECT_EQ(mdtw_distance(a, {}, 2), kInf);
  EXPECT_EQ(mdtw_distance(a, a, 0), kInf);
  // Length not divisible by dim.
  std::vector<double> bad = {1.0, 2.0, 3.0};
  EXPECT_EQ(mdtw_distance(bad, bad, 2), kInf);
}

TEST(MdtwTest, Dim1MatchesScalarDtw) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) a.push_back(std::sin(0.2 * i));
  for (int i = 0; i < 55; ++i) b.push_back(std::sin(0.15 * i + 0.3));
  EXPECT_NEAR(mdtw_distance(a, b, 1), dtw_distance(a, b), 1e-9);
}

TEST(MdtwTest, AbsorbsTimeStretch) {
  // The same helix at half the sampling vs a different-frequency one.
  const auto slow = helix(120, 0.075, 0.00025);
  const auto fast = helix(60, 0.15, 0.0005);
  const auto other = helix(60, 0.4, 0.0);
  EXPECT_LT(mdtw_distance(fast, slow, 2), mdtw_distance(fast, other, 2));
}

TEST(MdtwTest, EarlyAbandon) {
  const auto a = helix(60);
  auto b = a;
  for (double& v : b) v += 2.0;
  EXPECT_EQ(mdtw_distance(a, b, 2, 1.0, /*abandon_above=*/1.0), kInf);
  EXPECT_LT(mdtw_distance(a, a, 2, 1.0, 1.0), kInf);
}

TEST(MdtwFindBestTest, LocatesSubsequence) {
  const auto ref = helix(400);
  // Rows 120..160 as the query.
  std::vector<double> query(ref.begin() + 240, ref.begin() + 320);
  MdtwSearchOptions opt;
  opt.start_stride = 1;
  const MdtwMatch m = mdtw_find_best(query, ref, 2, opt);
  ASSERT_TRUE(m.found);
  EXPECT_NEAR(static_cast<double>(m.start), 120.0, 4.0);
  EXPECT_NEAR(m.distance, 0.0, 1e-9);
}

TEST(MdtwFindBestTest, StretchedQueryMatchesLongerSegment) {
  const auto ref = helix(400);
  // Every second row of rows 120..200: the query runs at 2x speed.
  std::vector<double> query;
  for (int r = 120; r < 200; r += 2) {
    query.push_back(ref[static_cast<std::size_t>(2 * r)]);
    query.push_back(ref[static_cast<std::size_t>(2 * r + 1)]);
  }
  MdtwSearchOptions opt;
  opt.start_stride = 1;
  const MdtwMatch m = mdtw_find_best(query, ref, 2, opt);
  ASSERT_TRUE(m.found);
  EXPECT_GT(m.length, query.size() / 2);  // matched more rows than query
}

TEST(MdtwFindBestTest, EmptyOrShortReference) {
  const auto q = helix(40);
  EXPECT_FALSE(mdtw_find_best(q, {}, 2).found);
  EXPECT_FALSE(mdtw_find_best(q, helix(1), 2).found);
}

// Property: dim-2 distance upper-bounds each single-dim distance... not in
// general for DTW (different warps), but the SUM of per-dim distances with
// a shared warp is >= the best per-dim distance; sanity-check monotone
// behavior in noise instead.
class MdtwNoiseProperty : public ::testing::TestWithParam<double> {};

TEST_P(MdtwNoiseProperty, DistanceGrowsWithPerturbation) {
  const auto a = helix(80);
  auto near = a;
  auto far = a;
  const double s = GetParam();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double wobble = std::sin(0.7 * static_cast<double>(i));
    near[i] += s * wobble;
    far[i] += (s + 0.3) * wobble;
  }
  EXPECT_LE(mdtw_distance(a, near, 2), mdtw_distance(a, far, 2) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, MdtwNoiseProperty,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace vihot::dsp
