#include "dsp/resampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace vihot::dsp {
namespace {

TEST(ResamplerTest, UniformInputRoundTrips) {
  util::TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.push(0.1 * i, static_cast<double>(i));
  const util::UniformSeries out = resample(ts, 10.0);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.values[i], static_cast<double>(i), 1e-9);
  }
}

TEST(ResamplerTest, ExactMultipleKeepsFinalSample) {
  // Regression: duration 0.3 at 10 Hz gives 0.3 * 10 == 2.999...96 in
  // binary floating point; an unguarded floor()+1 computed 3 samples and
  // silently dropped the final in-range one at t = 0.3.
  util::TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(0.1, 1.0);
  ts.push(0.2, 2.0);
  ts.push(0.3, 3.0);
  const util::UniformSeries out = resample(ts, 10.0);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out.values.back(), 3.0, 1e-9);
  EXPECT_NEAR(out.end_time(), 0.3, 1e-9);
}

TEST(ResamplerTest, IrregularInputInterpolated) {
  util::TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(0.3, 3.0);
  ts.push(1.0, 10.0);  // value = 10 * t
  const util::UniformSeries out = resample(ts, 4.0);  // t = 0, .25, .5, .75, 1
  ASSERT_EQ(out.size(), 5u);
  EXPECT_NEAR(out.values[1], 2.5, 1e-9);
  EXPECT_NEAR(out.values[2], 5.0, 1e-9);
  EXPECT_NEAR(out.values[4], 10.0, 1e-9);
}

TEST(ResamplerTest, EmptyAndSingle) {
  util::TimeSeries empty;
  EXPECT_TRUE(resample(empty, 100.0).empty());
  util::TimeSeries one;
  one.push(1.0, 42.0);
  const auto out = resample(one, 100.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.values[0], 42.0);
}

TEST(ResamplerTest, ZeroRateIsEmpty) {
  util::TimeSeries ts;
  ts.push(0.0, 1.0);
  ts.push(1.0, 2.0);
  EXPECT_TRUE(resample(ts, 0.0).empty());
}

TEST(ResamplerTest, WindowResampleSpansExactly) {
  util::TimeSeries ts;
  for (int i = 0; i <= 100; ++i) ts.push(0.01 * i, std::sin(0.2 * i));
  const util::UniformSeries w = resample_window(ts, 0.25, 0.75, 11);
  ASSERT_EQ(w.size(), 11u);
  EXPECT_DOUBLE_EQ(w.t0, 0.25);
  EXPECT_NEAR(w.end_time(), 0.75, 1e-12);
}

TEST(ResamplerTest, WindowClampsOutsideData) {
  util::TimeSeries ts;
  ts.push(1.0, 5.0);
  ts.push(2.0, 7.0);
  const util::UniformSeries w = resample_window(ts, 0.0, 3.0, 4);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w.values.front(), 5.0);  // clamped before data start
  EXPECT_DOUBLE_EQ(w.values.back(), 7.0);   // clamped after data end
}

TEST(ResamplerTest, WindowDegenerateInputs) {
  util::TimeSeries ts;
  ts.push(0.0, 1.0);
  EXPECT_TRUE(resample_window(ts, 0.0, 1.0, 0).empty());
  EXPECT_TRUE(resample_window(ts, 2.0, 1.0, 5).empty());
  util::TimeSeries empty;
  EXPECT_TRUE(resample_window(empty, 0.0, 1.0, 5).empty());
}

TEST(ResamplerTest, MaxGapFindsWorstInterval) {
  util::TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(0.002, 0.0);
  ts.push(0.036, 0.0);  // 34 ms gap (the paper's clean-channel worst case)
  ts.push(0.038, 0.0);
  EXPECT_NEAR(max_gap(ts), 0.034, 1e-12);
}

TEST(ResamplerTest, MeanRateMatchesUniformSpacing) {
  util::TimeSeries ts;
  for (int i = 0; i < 501; ++i) ts.push(0.002 * i, 0.0);
  EXPECT_NEAR(mean_rate_hz(ts), 500.0, 1e-6);
  util::TimeSeries single;
  single.push(0.0, 0.0);
  EXPECT_DOUBLE_EQ(mean_rate_hz(single), 0.0);
}

// Property: resampling a band-limited signal preserves it closely.
class ResampleFidelity : public ::testing::TestWithParam<double> {};

TEST_P(ResampleFidelity, SineReconstruction) {
  const double rate = GetParam();
  util::Rng rng(17);
  util::TimeSeries ts;
  double t = 0.0;
  while (t < 5.0) {
    ts.push(t, std::sin(2.0 * 3.14159265 * 1.5 * t));  // 1.5 Hz tone
    t += rng.uniform(0.001, 0.004);  // irregular ~400 Hz sampling
  }
  const util::UniformSeries out = resample(ts, rate);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double truth =
        std::sin(2.0 * 3.14159265 * 1.5 * out.time_at(i));
    EXPECT_NEAR(out.values[i], truth, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ResampleFidelity,
                         ::testing::Values(50.0, 100.0, 200.0, 500.0));

}  // namespace
}  // namespace vihot::dsp
