// Matcher-equivalence suite (ctest label: matcher-equivalence).
//
// The fast path of dsp::find_best_match — prefix-sum means, the
// endpoint/band lower-bound cascade, DTW early abandoning, workspace
// reuse, and the parallel candidate-length fan-out — is only allowed to
// change how fast the answer arrives, never the answer. These tests pin
// that invariant down with EXPECT_EQ on doubles: best, runner-up, and
// top-K must be BIT-IDENTICAL between the pruned scan, the unpruned
// scan, the naive reference implementation, and the parallel scan.
#include "dsp/series_match.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <random>
#include <thread>
#include <vector>

namespace vihot::dsp {
namespace {

std::vector<double> noisy_sine(std::size_t n, double period,
                               std::uint32_t seed, double amp = 1.0) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.05);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = amp * std::sin(2.0 * 3.14159265358979 *
                           static_cast<double>(i) / period) +
            noise(rng);
  }
  return xs;
}

void expect_same_match(const SeriesMatch& a, const SeriesMatch& b,
                       const char* what) {
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_EQ(a.start, b.start) << what;
  EXPECT_EQ(a.length, b.length) << what;
  EXPECT_EQ(a.distance, b.distance) << what;  // bit-identical, not NEAR
  EXPECT_EQ(a.score, b.score) << what;
  EXPECT_EQ(a.runner_up, b.runner_up) << what;
  EXPECT_EQ(a.runner_up_start, b.runner_up_start) << what;
  EXPECT_EQ(a.runner_up_length, b.runner_up_length) << what;
  ASSERT_EQ(a.top.size(), b.top.size()) << what;
  for (std::size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].start, b.top[i].start) << what << " top[" << i << "]";
    EXPECT_EQ(a.top[i].length, b.top[i].length)
        << what << " top[" << i << "]";
    EXPECT_EQ(a.top[i].distance, b.top[i].distance)
        << what << " top[" << i << "]";
  }
}

SeriesMatchOptions pruning_off(SeriesMatchOptions opt) {
  opt.use_lower_bound = false;
  opt.use_band_lower_bound = false;
  opt.use_early_abandon = false;
  return opt;
}

// A real multi-threaded executor (the engine's MatchParallelizer is
// exercised by the engine tests; here we only need *some* concurrent
// fan-out to prove scan-order independence).
class ThreadedExecutor final : public SeriesMatchParallel {
 public:
  bool run(std::size_t count,
           const std::function<void(std::size_t)>& fn) override {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&] {
        for (std::size_t k = next.fetch_add(1); k < count;
             k = next.fetch_add(1)) {
          fn(k);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    return true;
  }
};

// Option sets covering every code path that transforms the series
// (centering, DC shift) or scores candidates (bias, filter).
struct NamedOptions {
  const char* name;
  SeriesMatchOptions opt;
};

std::vector<NamedOptions> option_matrix() {
  std::vector<NamedOptions> out;
  SeriesMatchOptions base;
  base.dtw.band_fraction = 0.25;
  base.start_stride = 2;
  out.push_back({"default", base});

  SeriesMatchOptions centered = base;
  centered.mean_center = true;
  out.push_back({"mean_center", centered});

  SeriesMatchOptions dc = base;
  dc.max_dc_offset = 0.3;
  out.push_back({"dc_offset", dc});

  SeriesMatchOptions both = base;
  both.mean_center = true;
  both.max_dc_offset = 0.3;
  out.push_back({"mean_center+dc_offset", both});

  SeriesMatchOptions biased = base;
  biased.score_bias = [](std::size_t start, std::size_t) {
    const double dev = static_cast<double>(start) - 100.0;
    return 1e-6 * dev * dev;
  };
  out.push_back({"score_bias", biased});

  SeriesMatchOptions filtered = base;
  filtered.candidate_filter = [](std::size_t start, std::size_t) {
    return start % 3 != 1;
  };
  out.push_back({"candidate_filter", filtered});
  return out;
}

TEST(MatcherEquivalence, PrunedMatchesUnprunedBitIdentical) {
  const auto reference = noisy_sine(600, 48.0, 11);
  const auto query = noisy_sine(30, 48.0, 12);
  for (const NamedOptions& cfg : option_matrix()) {
    const SeriesMatch pruned = find_best_match(query, reference, cfg.opt);
    const SeriesMatch unpruned =
        find_best_match(query, reference, pruning_off(cfg.opt));
    expect_same_match(pruned, unpruned, cfg.name);
  }
}

TEST(MatcherEquivalence, FastPathMatchesNaiveReference) {
  const auto reference = noisy_sine(600, 48.0, 21);
  const auto query = noisy_sine(30, 48.0, 22);
  for (const NamedOptions& cfg : option_matrix()) {
    const SeriesMatch fast = find_best_match(query, reference, cfg.opt);
    const SeriesMatch naive =
        find_best_match_reference(query, reference, cfg.opt);
    expect_same_match(fast, naive, cfg.name);
  }
}

TEST(MatcherEquivalence, ParallelMatchesSerialBitIdentical) {
  const auto reference = noisy_sine(600, 48.0, 31);
  const auto query = noisy_sine(30, 48.0, 32);
  ThreadedExecutor executor;
  for (const NamedOptions& cfg : option_matrix()) {
    const SeriesMatch serial = find_best_match(query, reference, cfg.opt);
    SeriesMatchOptions par = cfg.opt;
    par.parallel = &executor;
    // The shared-best race changes which candidates get pruned, never
    // which hits get reported; repeat to give the race some room.
    for (int round = 0; round < 5; ++round) {
      const SeriesMatch parallel = find_best_match(query, reference, par);
      expect_same_match(serial, parallel, cfg.name);
    }
  }
}

TEST(MatcherEquivalence, DirtyWorkspaceReuseIsBitIdentical) {
  const auto ref_a = noisy_sine(500, 40.0, 41);
  const auto ref_b = noisy_sine(300, 25.0, 42);
  const auto query = noisy_sine(28, 40.0, 43);
  SeriesMatchOptions opt;
  opt.dtw.band_fraction = 0.25;
  MatchWorkspace ws;
  const SeriesMatch first = find_best_match(query, ref_a, opt, ws);
  // Scans against a different reference, then the original again: the
  // recycled buffers must not leak state between calls.
  (void)find_best_match(query, ref_b, opt, ws);
  const SeriesMatch again = find_best_match(query, ref_a, opt, ws);
  expect_same_match(first, again, "workspace reuse");
}

TEST(MatcherEquivalence, PruneFunnelAccountsForEveryCandidate) {
  const auto reference = noisy_sine(600, 48.0, 51);
  const auto query = noisy_sine(30, 48.0, 52);
  SeriesMatchOptions opt;
  opt.dtw.band_fraction = 0.25;
  const SeriesMatch pruned = find_best_match(query, reference, opt);
  const SeriesMatch unpruned =
      find_best_match(query, reference, pruning_off(opt));
  const SeriesMatchStats& s = pruned.scan;
  EXPECT_EQ(s.candidates, s.lb_endpoint_pruned + s.lb_band_pruned +
                              s.dtw_abandoned + s.dtw_evaluated);
  EXPECT_EQ(unpruned.scan.dtw_evaluated + unpruned.scan.dtw_abandoned,
            unpruned.scan.candidates);
  // The whole point of the fast path: far fewer full DTW evaluations.
  EXPECT_LT(s.dtw_evaluated, unpruned.scan.dtw_evaluated / 2);
  EXPECT_GT(s.lb_endpoint_pruned + s.lb_band_pruned + s.dtw_abandoned, 0u);
}

// Regression (runner-up starvation): once the old scan found a perfect
// (distance ~0) winner its pruning bar collapsed to zero and every later
// candidate was skipped — so a periodic signal whose second-best match
// lies AFTER the winner in scan order reported no runner-up at all. The
// slack-aware bar must keep the runner-up bookkeeping exact.
TEST(MatcherEquivalence, RunnerUpSurvivesExactWinnerPruning) {
  std::vector<double> reference(220);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] =
        std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) / 50.0);
  }
  // Exact copy of an early window: the winner (distance == 0) appears
  // early in the scan; the twin one period later must still be reported.
  const std::vector<double> query(reference.begin() + 10,
                                  reference.begin() + 40);
  SeriesMatchOptions opt;
  opt.dtw.band_fraction = 0.25;
  opt.start_stride = 2;
  const SeriesMatch pruned = find_best_match(query, reference, opt);
  ASSERT_TRUE(pruned.found);
  EXPECT_EQ(pruned.distance, 0.0);
  EXPECT_GT(pruned.runner_up_length, 0u)
      << "runner-up starved by an exact winner";
  EXPECT_NEAR(static_cast<double>(pruned.runner_up_start), 60.0, 4.0);
  const SeriesMatch unpruned =
      find_best_match(query, reference, pruning_off(opt));
  expect_same_match(pruned, unpruned, "exact-winner pruning");
}

// Regression (dead DC-offset path): with mean_center on, the offset
// delta used to be computed from already-centered series, so it was
// always ~0 and max_dc_offset silently behaved like plain centering —
// level mismatches beyond the cap were forgiven instead of penalized.
TEST(MatcherEquivalence, DcOffsetCapAppliesUnderMeanCentering) {
  std::vector<double> reference(300);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] =
        std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) / 60.0);
  }
  SeriesMatchOptions opt;
  opt.dtw.band_fraction = 0.25;
  opt.mean_center = true;
  opt.max_dc_offset = 0.2;

  // Level shift within the cap: fully absorbed, the match is exact.
  std::vector<double> query(reference.begin() + 20, reference.begin() + 50);
  for (double& v : query) v += 0.15;
  const SeriesMatch within = find_best_match(query, reference, opt);
  ASSERT_TRUE(within.found);
  EXPECT_LT(within.distance, 1e-12);

  // Level shift beyond the cap: the residual must stay in the cost
  // (the dead path used to absorb this entirely via centering).
  std::vector<double> far_query(reference.begin() + 20,
                                reference.begin() + 50);
  for (double& v : far_query) v += 0.8;
  const SeriesMatch beyond = find_best_match(far_query, reference, opt);
  ASSERT_TRUE(beyond.found);
  EXPECT_GT(beyond.distance, 0.01);
  EXPECT_GT(beyond.distance, within.distance * 100.0);
}

}  // namespace
}  // namespace vihot::dsp
