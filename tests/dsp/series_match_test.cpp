#include "dsp/series_match.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace vihot::dsp {
namespace {

// A reference with distinctive local shapes: a chirp.
std::vector<double> chirp(int n) {
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / n;
    xs.push_back(std::sin(2.0 * 3.14159265 * (2.0 + 10.0 * t) * t));
  }
  return xs;
}

TEST(SeriesMatchTest, FindsExactSubsequence) {
  const auto ref = chirp(400);
  const std::vector<double> query(ref.begin() + 120, ref.begin() + 160);
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  EXPECT_NEAR(static_cast<double>(m.start), 120.0, 3.0);
  EXPECT_NEAR(m.distance, 0.0, 1e-9);
}

TEST(SeriesMatchTest, AbsorbsSpeedMismatch) {
  // A smoothed random walk has a unique shape everywhere (unlike a
  // chirp, which is self-similar under time scaling): the only good
  // match for a 2x-subsampled query is the original region, stretched.
  util::Rng rng(42);
  std::vector<double> ref;
  double v = 0.0;
  double mom = 0.0;
  for (int i = 0; i < 400; ++i) {
    mom = 0.9 * mom + rng.normal(0.0, 0.05);
    v += mom;
    ref.push_back(v);
  }
  std::vector<double> query;
  for (int i = 120; i < 180; i += 2) {
    query.push_back(ref[static_cast<std::size_t>(i)]);
  }
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  EXPECT_NEAR(static_cast<double>(m.start), 120.0, 8.0);
  EXPECT_GT(m.length, query.size());
}

TEST(SeriesMatchTest, EmptyInputsNotFound) {
  const std::vector<double> ref = {1.0, 2.0, 3.0};
  EXPECT_FALSE(find_best_match({}, ref).found);
  EXPECT_FALSE(find_best_match(ref, {}).found);
  EXPECT_FALSE(find_best_match(std::vector<double>{1.0}, ref).found);
}

TEST(SeriesMatchTest, ReferenceShorterThanCandidates) {
  const std::vector<double> query(50, 1.0);
  const std::vector<double> ref = {1.0, 1.0, 1.0};
  // Smallest candidate is 25 samples > reference size: nothing to try.
  const SeriesMatch m = find_best_match(query, ref);
  EXPECT_FALSE(m.found);
}

TEST(SeriesMatchTest, RunnerUpDoesNotOverlapWinner) {
  // Periodic reference: the same shape repeats, so a distinct second
  // match must exist away from the winner.
  std::vector<double> ref;
  for (int i = 0; i < 300; ++i) ref.push_back(std::sin(0.2 * i));
  std::vector<double> query(ref.begin() + 30, ref.begin() + 60);
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  ASSERT_GT(m.runner_up_length, 0u);
  const bool overlap = m.runner_up_start < m.end() &&
                       m.start < m.runner_up_start + m.runner_up_length;
  EXPECT_FALSE(overlap);
  EXPECT_NEAR(m.runner_up, m.distance, 0.02);  // periodic: near-tie
}

TEST(SeriesMatchTest, TopCandidatesSortedAndDisjoint) {
  std::vector<double> ref;
  for (int i = 0; i < 400; ++i) ref.push_back(std::sin(0.15 * i));
  std::vector<double> query(ref.begin() + 50, ref.begin() + 90);
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  opt.top_k = 4;
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  ASSERT_GE(m.top.size(), 2u);
  for (std::size_t i = 1; i < m.top.size(); ++i) {
    EXPECT_GE(m.top[i].distance, m.top[i - 1].distance);
    for (std::size_t j = 0; j < i; ++j) {
      const bool overlap = m.top[j].start < m.top[i].end() &&
                           m.top[i].start < m.top[j].end();
      EXPECT_FALSE(overlap) << i << " vs " << j;
    }
  }
  EXPECT_EQ(m.top[0].start, m.start);
}

TEST(SeriesMatchTest, CandidateFilterExcludesRegions) {
  const auto ref = chirp(400);
  const std::vector<double> query(ref.begin() + 120, ref.begin() + 160);
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  // Forbid the true region; the match must land elsewhere.
  opt.candidate_filter = [](std::size_t start, std::size_t len) {
    return start + len <= 100 || start >= 200;
  };
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  EXPECT_TRUE(m.end() <= 100 || m.start >= 200);
  EXPECT_GT(m.distance, 1e-6);
}

TEST(SeriesMatchTest, ScoreBiasBreaksTies) {
  // Periodic reference with two equivalent matches; bias one away.
  std::vector<double> ref;
  for (int i = 0; i < 200; ++i) ref.push_back(std::sin(0.2 * i));
  // Query matches around i=30 and around i=30+period(~157/5)...
  std::vector<double> query(ref.begin() + 100, ref.begin() + 130);
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  opt.score_bias = [](std::size_t start, std::size_t) {
    // Penalize everything except the early region.
    return start > 60 ? 1.0 : 0.0;
  };
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  EXPECT_LE(m.start, 60u);
}

TEST(SeriesMatchTest, MeanCenterIgnoresOffset) {
  const auto ref = chirp(300);
  std::vector<double> query(ref.begin() + 80, ref.begin() + 120);
  for (double& v : query) v += 5.0;  // large DC offset
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  opt.mean_center = true;
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  EXPECT_NEAR(static_cast<double>(m.start), 80.0, 5.0);
}

TEST(SeriesMatchTest, MaxDcOffsetAbsorbsSmallShift) {
  const auto ref = chirp(300);
  std::vector<double> query(ref.begin() + 80, ref.begin() + 120);
  for (double& v : query) v += 0.15;
  SeriesMatchOptions with;
  with.start_stride = 1;
  with.max_dc_offset = 0.2;
  SeriesMatchOptions without;
  without.start_stride = 1;
  const SeriesMatch m_with = find_best_match(query, ref, with);
  const SeriesMatch m_without = find_best_match(query, ref, without);
  ASSERT_TRUE(m_with.found);
  ASSERT_TRUE(m_without.found);
  EXPECT_LT(m_with.distance, m_without.distance);
}

// Property: the winner's distance never exceeds any fixed candidate's.
class MatchOptimality : public ::testing::TestWithParam<int> {};

TEST_P(MatchOptimality, WinnerBeatsSampledCandidates) {
  const auto ref = chirp(250);
  const int at = 40 + 13 * GetParam();
  const std::vector<double> query(
      ref.begin() + at, ref.begin() + at + 30);
  SeriesMatchOptions opt;
  opt.start_stride = 1;
  opt.use_lower_bound = false;
  const SeriesMatch m = find_best_match(query, ref, opt);
  ASSERT_TRUE(m.found);
  // Compare against a handful of explicit candidates.
  for (std::size_t start = 0; start + 30 <= ref.size(); start += 17) {
    const double d = dtw_distance_normalized(
        query, std::span<const double>(ref).subspan(start, 30));
    EXPECT_LE(m.distance, d + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Starts, MatchOptimality, ::testing::Range(0, 8));

}  // namespace
}  // namespace vihot::dsp
