// Bit-identity gate for the dispatched SIMD kernels (dsp/simd.h).
//
// Every dispatched kernel is specified as an exact sequence of rounded
// floating-point operations; the AVX2 table must reproduce the scalar
// table's output bit-for-bit (memcmp, not tolerance). On hardware
// without AVX2 the lane-level comparisons skip themselves and the
// scalar contract still runs through the dispatch plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "core/kalman_sanitizer.h"
#include "core/sanitizer.h"
#include "dsp/dtw.h"
#include "dsp/series_match.h"
#include "dsp/simd.h"
#include "wifi/csi.h"

namespace vihot::dsp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

::testing::AssertionResult SameBits(const char* a_expr, const char* b_expr,
                                    double a, double b) {
  if (bits_equal(a, b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ: " << a << " vs " << b;
}

#define EXPECT_SAME_BITS(a, b) EXPECT_PRED_FORMAT2(SameBits, a, b)

std::vector<double> random_values(std::size_t n, std::uint32_t seed,
                                  double lo = -3.0, double hi = 3.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> xs(n);
  for (double& v : xs) v = dist(rng);
  return xs;
}

bool memcmp_equal(const double* a, const double* b, std::size_t n) {
  if (n == 0) return true;  // empty vectors may hand memcmp null data()
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

class SimdKernelsAvx2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::avx2_supported()) {
      GTEST_SKIP() << "AVX2 not available on this host/build";
    }
    avx2_ = simd::avx2_kernels();
    ASSERT_NE(avx2_, nullptr);
  }
  const simd::KernelTable* avx2_ = nullptr;
  const simd::KernelTable& scalar_ = simd::scalar_kernels();
};

// The DTW kernel is exercised at whole-evaluation granularity, through
// the same wrapper production uses: the scalar table rolls DP rows, the
// AVX2 table walks anti-diagonals, and both must return the same bits
// for every (shape, band, abandon) combination.
TEST_F(SimdKernelsAvx2Test, DtwBandedMatchesScalarBitwise) {
  struct Shape {
    std::size_t n, m;
  };
  const Shape shapes[] = {{1, 1},  {1, 9},   {9, 1},  {4, 4},  {5, 23},
                          {23, 5}, {21, 21}, {42, 37}, {84, 84}};
  const double fracs[] = {0.05, 0.3, 1.0};
  for (const auto& s : shapes) {
    for (const double frac : fracs) {
      for (std::uint32_t seed = 1; seed <= 4; ++seed) {
        const auto a = random_values(s.n, seed);
        const auto b = random_values(s.m, seed + 100);
        DtwOptions options;
        options.band_fraction = frac;
        double abandons[3] = {kInf, 0.0, 0.0};
        {
          simd::ForcedKernels forced(scalar_);
          const double open = dtw_distance(a, b, options);
          // A threshold just below / far below the answer exercises the
          // abandon path; row minima are <= the final distance, so
          // open/2 abandons somewhere in the middle for most inputs.
          abandons[1] = std::isfinite(open) ? open / 2.0 : 1.0;
          abandons[2] = 0.25;
        }
        for (const double ab : abandons) {
          options.abandon_above = ab;
          double ds = 0.0;
          double da = 0.0;
          {
            simd::ForcedKernels forced(scalar_);
            ds = dtw_distance(a, b, options);
          }
          {
            simd::ForcedKernels forced(*avx2_);
            da = dtw_distance(a, b, options);
          }
          EXPECT_SAME_BITS(ds, da)
              << "n=" << s.n << " m=" << s.m << " frac=" << frac
              << " abandon=" << ab << " seed=" << seed;
        }
      }
    }
  }
}

// Scalar and AVX2 evaluations interleaved over ONE shared scratch: each
// kernel dirties the lanes in a completely different pattern (rolling
// rows vs rolling anti-diagonals), so this fails if either one breaks
// the all-infinity lane invariant it must restore before returning.
TEST_F(SimdKernelsAvx2Test, DtwBandedInterleavedTablesShareBuffers) {
  DtwBuffers shared;
  DtwBuffers fresh_scalar;
  const std::size_t sizes[] = {33, 7, 84, 1, 21, 12, 60};
  DtwOptions options;
  options.band_fraction = 0.3;
  std::uint32_t seed = 500;
  for (std::size_t idx = 0; idx + 1 < std::size(sizes); ++idx) {
    const auto a = random_values(sizes[idx], ++seed);
    const auto b = random_values(sizes[idx + 1], ++seed);
    options.abandon_above = (idx % 3 == 2) ? 0.5 : kInf;
    const simd::KernelTable& table = (idx % 2 == 0) ? *avx2_ : scalar_;
    simd::ForcedKernels forced(table);
    const double got = dtw_distance_buffered(a, b, options, shared);
    double want = 0.0;
    {
      simd::ForcedKernels rescue(scalar_);
      want = dtw_distance_buffered(a, b, options, fresh_scalar);
    }
    EXPECT_SAME_BITS(got, want) << "idx=" << idx;
  }
}

TEST_F(SimdKernelsAvx2Test, BandLowerBoundMatchesScalarBitwise) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{8},
                              std::size_t{17}, std::size_t{64}}) {
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
      const auto seg = random_values(n, seed);
      auto lo = random_values(n, seed + 10, -2.0, 0.0);
      auto hi = random_values(n, seed + 20, 0.0, 2.0);
      if (n >= 4) {
        // An unreachable column (lo = +inf, hi = -inf) must force an
        // infinite bound through both paths.
        if (seed == 5) {
          lo[n / 2] = kInf;
          hi[n / 2] = -kInf;
        }
      }
      for (const double stop : {kInf, 2.0, 0.25, 0.0}) {
        const double rs = scalar_.band_lower_bound(seg.data(), lo.data(),
                                                   hi.data(), n, stop);
        const double ra = avx2_->band_lower_bound(seg.data(), lo.data(),
                                                  hi.data(), n, stop);
        EXPECT_SAME_BITS(rs, ra)
            << "n=" << n << " seed=" << seed << " stop=" << stop;
      }
    }
  }
}

TEST_F(SimdKernelsAvx2Test, EnvelopeUpdateMatchesScalarIncludingSignedZero) {
  const std::size_t m = 19;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    auto lo_s = random_values(m + 1, seed, -1.0, 1.0);
    auto hi_s = random_values(m + 1, seed + 5, -1.0, 1.0);
    // Signed-zero cells: vminpd/vmaxpd would pick the wrong operand
    // here; the cmp+blend kernels must keep std::min/std::max's choice.
    lo_s[3] = 0.0;
    lo_s[4] = -0.0;
    hi_s[3] = -0.0;
    hi_s[4] = 0.0;
    auto lo_a = lo_s;
    auto hi_a = hi_s;
    const double vs[] = {0.0, -0.0, 0.7, -1.5};
    struct Span {
      std::size_t lo, hi;
    };
    const Span spans[] = {{1, m}, {2, 6}, {3, 3}, {1, 3}, {5, 18}};
    for (const double v : vs) {
      for (const auto& s : spans) {
        scalar_.envelope_update(v, lo_s.data(), hi_s.data(), s.lo, s.hi);
        avx2_->envelope_update(v, lo_a.data(), hi_a.data(), s.lo, s.hi);
        EXPECT_TRUE(memcmp_equal(lo_s.data(), lo_a.data(), m + 1));
        EXPECT_TRUE(memcmp_equal(hi_s.data(), hi_a.data(), m + 1));
      }
    }
  }
}

TEST_F(SimdKernelsAvx2Test, SubtractOffsetMatchesScalarBitwise) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{7},
        std::size_t{32}, std::size_t{33}}) {
    const auto src = random_values(n, 42);
    for (const double shift : {0.0, -0.0, 0.321, -2.5}) {
      std::vector<double> dst_s(n, -9.0);
      std::vector<double> dst_a(n, -9.0);
      scalar_.subtract_offset(src.data(), shift, dst_s.data(), n);
      avx2_->subtract_offset(src.data(), shift, dst_a.data(), n);
      EXPECT_TRUE(memcmp_equal(dst_s.data(), dst_a.data(), n))
          << "n=" << n << " shift=" << shift;
    }
  }
}

TEST_F(SimdKernelsAvx2Test, ConjProductsMatchesScalarBitwise) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{5},
        std::size_t{30}, std::size_t{57}}) {
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
      const auto re_a = random_values(n, seed);
      const auto im_a = random_values(n, seed + 1);
      const auto re_b = random_values(n, seed + 2);
      const auto im_b = random_values(n, seed + 3);
      std::vector<std::complex<double>> a(n);
      std::vector<std::complex<double>> b(n);
      for (std::size_t f = 0; f < n; ++f) {
        a[f] = {re_a[f], im_a[f]};
        b[f] = {re_b[f], im_b[f]};
      }
      std::vector<double> pr_s(n), pi_s(n), pr_a(n), pi_a(n);
      scalar_.conj_products(a.data(), b.data(), pr_s.data(), pi_s.data(), n);
      avx2_->conj_products(a.data(), b.data(), pr_a.data(), pi_a.data(), n);
      EXPECT_TRUE(memcmp_equal(pr_s.data(), pr_a.data(), n));
      EXPECT_TRUE(memcmp_equal(pi_s.data(), pi_a.data(), n));
      // And the kernel contract matches the std::complex multiply the
      // sanitizers historically used, for these finite values.
      for (std::size_t f = 0; f < n; ++f) {
        const std::complex<double> d = a[f] * std::conj(b[f]);
        EXPECT_SAME_BITS(pr_s[f], d.real());
        EXPECT_SAME_BITS(pi_s[f], d.imag());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ScalarTableIsScalarLevel) {
  EXPECT_EQ(simd::scalar_kernels().level, simd::Level::kScalar);
  EXPECT_STREQ(simd::to_string(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(simd::Level::kAvx2), "avx2");
}

TEST(SimdDispatchTest, ForceKernelsOverridesActive) {
  {
    simd::ForcedKernels forced(simd::scalar_kernels());
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
    EXPECT_EQ(&simd::active(), &simd::scalar_kernels());
  }
  if (simd::avx2_supported()) {
    simd::ForcedKernels forced(*simd::avx2_kernels());
    EXPECT_EQ(simd::active_level(), simd::Level::kAvx2);
  }
}

TEST(SimdDispatchTest, Avx2SupportImpliesTablePresent) {
  if (simd::avx2_supported()) {
    ASSERT_NE(simd::avx2_kernels(), nullptr);
    EXPECT_EQ(simd::avx2_kernels()->level, simd::Level::kAvx2);
  }
}

// ---------------------------------------------------------------------------
// End-to-end forced-dispatch equivalence: the matcher and the sanitizers
// must return identical bits whichever table runs.
// ---------------------------------------------------------------------------

std::vector<double> smooth_series(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-0.2, 0.2);
  std::vector<double> xs(n);
  double v = 0.0;
  for (double& x : xs) {
    v += dist(rng);
    x = v + 0.4 * std::sin(static_cast<double>(&x - xs.data()) * 0.12);
  }
  return xs;
}

void expect_same_match(const SeriesMatch& a, const SeriesMatch& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.length, b.length);
  EXPECT_SAME_BITS(a.distance, b.distance);
  EXPECT_SAME_BITS(a.score, b.score);
  EXPECT_SAME_BITS(a.runner_up, b.runner_up);
  EXPECT_EQ(a.runner_up_start, b.runner_up_start);
  EXPECT_EQ(a.runner_up_length, b.runner_up_length);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (std::size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].start, b.top[i].start);
    EXPECT_EQ(a.top[i].length, b.top[i].length);
    EXPECT_SAME_BITS(a.top[i].distance, b.top[i].distance);
  }
}

std::vector<SeriesMatchOptions> forced_dispatch_option_matrix() {
  std::vector<SeriesMatchOptions> matrix;
  {
    SeriesMatchOptions opt;
    opt.dtw.band_fraction = 0.25;
    opt.start_stride = 2;
    matrix.push_back(opt);
  }
  {
    SeriesMatchOptions opt;  // narrow band + coarse stride
    opt.dtw.band_fraction = 0.05;
    opt.start_stride = 3;
    matrix.push_back(opt);
  }
  {
    SeriesMatchOptions opt;  // full band
    opt.dtw.band_fraction = 1.0;
    opt.start_stride = 2;
    matrix.push_back(opt);
  }
  {
    SeriesMatchOptions opt;  // mean-centering (query_eff kernel path)
    opt.dtw.band_fraction = 0.25;
    opt.start_stride = 2;
    opt.mean_center = true;
    matrix.push_back(opt);
  }
  {
    SeriesMatchOptions opt;  // DC shift (seg_eff kernel path)
    opt.dtw.band_fraction = 0.25;
    opt.start_stride = 2;
    opt.max_dc_offset = 0.3;
    matrix.push_back(opt);
  }
  return matrix;
}

TEST(SimdForcedDispatchTest, MatcherBitIdenticalAcrossTables) {
  const auto reference = smooth_series(400, 11);
  const auto query = smooth_series(40, 12);
  for (const auto& opt : forced_dispatch_option_matrix()) {
    SeriesMatch scalar_match;
    {
      simd::ForcedKernels forced(simd::scalar_kernels());
      scalar_match = find_best_match(query, reference, opt);
    }
    // Scalar dispatch must equal the naive reference scan.
    const SeriesMatch ref = find_best_match_reference(query, reference, opt);
    expect_same_match(scalar_match, ref);
    if (!simd::avx2_supported()) continue;
    SeriesMatch avx2_match;
    {
      simd::ForcedKernels forced(*simd::avx2_kernels());
      avx2_match = find_best_match(query, reference, opt);
    }
    expect_same_match(scalar_match, avx2_match);
    // Prune-funnel stats are part of the contract: dispatch must not
    // change which stage cut each candidate.
    EXPECT_EQ(scalar_match.scan.candidates, avx2_match.scan.candidates);
    EXPECT_EQ(scalar_match.scan.lb_endpoint_pruned,
              avx2_match.scan.lb_endpoint_pruned);
    EXPECT_EQ(scalar_match.scan.lb_band_pruned,
              avx2_match.scan.lb_band_pruned);
    EXPECT_EQ(scalar_match.scan.dtw_abandoned,
              avx2_match.scan.dtw_abandoned);
    EXPECT_EQ(scalar_match.scan.dtw_evaluated,
              avx2_match.scan.dtw_evaluated);
  }
}

wifi::CsiMeasurement random_frame(std::uint32_t seed, std::size_t nsc = 30) {
  wifi::CsiMeasurement m;
  m.t = 0.01 * static_cast<double>(seed);
  const auto re0 = random_values(nsc, seed);
  const auto im0 = random_values(nsc, seed + 1);
  const auto re1 = random_values(nsc, seed + 2);
  const auto im1 = random_values(nsc, seed + 3);
  m.h[0].resize(nsc);
  m.h[1].resize(nsc);
  for (std::size_t f = 0; f < nsc; ++f) {
    m.h[0][f] = {re0[f], im0[f]};
    m.h[1][f] = {re1[f], im1[f]};
  }
  return m;
}

TEST(SimdForcedDispatchTest, SanitizerPhaseBitIdenticalAcrossTables) {
  if (!simd::avx2_supported()) {
    GTEST_SKIP() << "AVX2 not available on this host/build";
  }
  const core::CsiSanitizer sanitizer;
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const auto m = random_frame(seed);
    double scalar_phase = 0.0;
    double avx2_phase = 0.0;
    {
      simd::ForcedKernels forced(simd::scalar_kernels());
      scalar_phase = sanitizer.phase(m);
    }
    {
      simd::ForcedKernels forced(*simd::avx2_kernels());
      avx2_phase = sanitizer.phase(m);
    }
    EXPECT_SAME_BITS(scalar_phase, avx2_phase);
  }
}

TEST(SimdForcedDispatchTest, KalmanSanitizerBitIdenticalAcrossTables) {
  if (!simd::avx2_supported()) {
    GTEST_SKIP() << "AVX2 not available on this host/build";
  }
  const core::SanitizerConfig base;
  const core::KalmanSanitizerConfig cfg;
  core::KalmanPhaseSanitizer scalar_s(base, cfg);
  core::KalmanPhaseSanitizer avx2_s(base, cfg);
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    auto m = random_frame(seed);
    m.t = 0.005 * static_cast<double>(seed);  // steady feed, no coast reset
    double a = 0.0;
    double b = 0.0;
    {
      simd::ForcedKernels forced(simd::scalar_kernels());
      a = scalar_s.sanitize(m);
    }
    {
      simd::ForcedKernels forced(*simd::avx2_kernels());
      b = avx2_s.sanitize(m);
    }
    EXPECT_SAME_BITS(a, b) << "frame " << seed;
  }
}

// ---------------------------------------------------------------------------
// Property: the envelope bound never exceeds the raw DTW distance, under
// the exact band geometry the kernel uses.
// ---------------------------------------------------------------------------

TEST(BandLowerBoundProperty, NeverExceedsRawDtw) {
  const std::size_t shapes[][2] = {{1, 1},  {1, 9},   {9, 1},  {2, 2},
                                   {21, 34}, {34, 21}, {40, 40}};
  for (const double frac : {0.0, 0.05, 0.3, 1.0}) {
    DtwOptions opt;
    opt.band_fraction = frac;
    for (const auto& s : shapes) {
      for (std::uint32_t seed = 1; seed <= 6; ++seed) {
        const auto q = random_values(s[0], seed);
        auto seg = random_values(s[1], seed + 50);
        // Nonzero DC shift between the sides (the matcher's seg_eff
        // case): the bound must hold for the shifted values it sees.
        for (double& v : seg) v += 0.37;
        simd::AlignedVector lo;
        simd::AlignedVector hi;
        build_envelope(q, seg.size(), opt, lo, hi);
        const double lb = band_lower_bound(seg, lo, hi, kInf);
        const double d = dtw_distance(q, seg, opt);
        // kBarSlack-style allowance: bound and DTW accumulate in
        // different orders, so allow a few ulps of rounding skew.
        EXPECT_LE(lb, d * (1.0 + 1e-12) + 1e-12)
            << "frac=" << frac << " n=" << s[0] << " m=" << s[1]
            << " seed=" << seed;
      }
    }
  }
}

TEST(BandLowerBoundProperty, EarlyExitDecisionMatchesFullSum) {
  // The blocked early exit must never change the caller's `> stop`
  // decision relative to the mathematically-identical full sum.
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const auto q = random_values(25, seed);
    const auto seg = random_values(30, seed + 5);
    DtwOptions opt;
    opt.band_fraction = 0.3;
    simd::AlignedVector lo;
    simd::AlignedVector hi;
    build_envelope(q, seg.size(), opt, lo, hi);
    const double full = band_lower_bound(seg, lo, hi, kInf);
    for (const double stop : {0.0, 0.1, 1.0, 10.0, full}) {
      const double early = band_lower_bound(seg, lo, hi, stop);
      EXPECT_EQ(early > stop, full > stop)
          << "seed=" << seed << " stop=" << stop;
      if (early <= stop) {
        // No exit taken: the exact in-order sum must be returned.
        EXPECT_SAME_BITS(early, full);
      }
    }
  }
}

}  // namespace
}  // namespace vihot::dsp
