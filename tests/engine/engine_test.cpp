// TrackerEngine + WorkerPool tests.
//
// The engine must behave exactly like N standalone ViHotTrackers — the
// batched fan-out is a scheduling optimization, never an algorithmic
// change — and it must stay correct under concurrent producers. The
// threaded tests here are the TSan targets of tools/run_checks.sh.
#include "engine/tracker_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <thread>
#include <vector>

#include "engine/worker_pool.h"
#include "obs/sink.h"
#include "tests/core/test_helpers.h"

namespace vihot::engine {
namespace {

using core::testing::synthetic_phase;
using core::testing::synthetic_profile;

// ------------------------------------------------------------ WorkerPool

TEST(WorkerPoolTest, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  auto job = [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  };
  pool.run(kCount, job);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, BackToBackBatchesDoNotLeakIndices) {
  // Exercises the batch hand-over: a worker of batch k still draining the
  // index counter must never claim an index of batch k+1.
  WorkerPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  auto job = [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  };
  constexpr int kBatches = 200;
  for (int b = 0; b < kBatches; ++b) pool.run(kCount, job);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), kBatches) << "index " << i;
  }
}

TEST(WorkerPoolTest, ZeroThreadsRunsInline) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t ran = 0;
  auto job = [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++ran;
  };
  pool.run(7, job);
  EXPECT_EQ(ran, 7u);
}

TEST(WorkerPoolTest, EmptyBatchReturnsImmediately) {
  WorkerPool pool(2);
  auto job = [](std::size_t) { FAIL() << "job ran for an empty batch"; };
  pool.run(0, job);
}

TEST(WorkerPoolTest, ItemsDrainedSumToBatchSizes) {
  WorkerPool pool(3);
  auto job = [](std::size_t) {};
  pool.run(100, job);
  pool.run(50, job);
  const std::vector<std::uint64_t> drained = pool.items_drained();
  ASSERT_EQ(drained.size(), 3u);
  std::uint64_t total = 0;
  for (const std::uint64_t n : drained) total += n;
  EXPECT_EQ(total, 150u);
}

TEST(WorkerPoolTest, InlinePoolCountsOnSlotZero) {
  WorkerPool pool(0);
  auto job = [](std::size_t) {};
  pool.run(9, job);
  const std::vector<std::uint64_t> drained = pool.items_drained();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], 9u);
}

// ---------------------------------------------------------- TrackerEngine

// Phase-controlled measurement: h[0] carries phase `phi` against a flat
// h[1], so the sanitized antenna-difference phase is exactly `phi`.
wifi::CsiMeasurement measurement(double t, double phi,
                                 std::size_t subcarriers = 4) {
  wifi::CsiMeasurement m;
  m.t = t;
  m.h[0].assign(subcarriers, std::polar(1.0, phi));
  m.h[1].assign(subcarriers, {1.0, 0.0});
  return m;
}

// Feeds a session the stream of a head following theta_fn, via either a
// standalone tracker or an engine session (both expose push_csi).
template <typename Sink, typename ThetaFn>
void feed(Sink&& push, ThetaFn&& theta_fn, double t0, double t1,
          double fingerprint) {
  for (double t = t0; t < t1; t += 0.004) {
    push(measurement(t, synthetic_phase(theta_fn(t), fingerprint)));
  }
}

TEST(TrackerEngineTest, SessionLifecycle) {
  TrackerEngine engine;
  const auto profile = engine.add_profile(synthetic_profile(5));

  const SessionId a = engine.create_session(profile);
  const SessionId b = engine.create_session(profile);
  const SessionId c = engine.create_session(profile);
  EXPECT_NE(a, kNoSession);
  EXPECT_EQ(engine.session_count(), 3u);
  EXPECT_EQ(engine.session_ids(), (std::vector<SessionId>{a, b, c}));

  EXPECT_TRUE(engine.destroy_session(b));
  EXPECT_FALSE(engine.destroy_session(b));  // already gone
  EXPECT_EQ(engine.session_count(), 2u);
  EXPECT_EQ(engine.session_ids(), (std::vector<SessionId>{a, c}));
  EXPECT_EQ(engine.estimate_all(1.0).size(), 2u);

  // Ids are never reused: a fresh session gets a fresh handle.
  const SessionId d = engine.create_session(profile);
  EXPECT_NE(d, b);
}

TEST(TrackerEngineTest, UnknownSessionIsRejected) {
  TrackerEngine engine;
  EXPECT_FALSE(engine.push_csi(42, measurement(0.0, 0.0)));
  EXPECT_FALSE(engine.push_imu(42, {}));
  EXPECT_FALSE(engine.push_camera(42, {}));
  EXPECT_FALSE(engine.destroy_session(42));
  // A failed LOOKUP is the absence of a result, not a valid == false
  // estimate (which also describes a live session that hasn't locked).
  EXPECT_FALSE(engine.estimate_one(42, 1.0).has_value());
  EXPECT_FALSE(engine.forecast_one(42, 0.1).has_value());
}

TEST(TrackerEngineTest, UnknownSessionLookupsAreCounted) {
  obs::Sink sink;
  TrackerEngine engine({0, &sink});
  const auto profile = engine.add_profile(synthetic_profile(3));
  const SessionId id = engine.create_session(profile);
  // Live session: results exist (valid or not), nothing counted.
  ASSERT_TRUE(engine.estimate_one(id, 0.0).has_value());
  ASSERT_TRUE(engine.forecast_one(id, 0.1).has_value());
  EXPECT_EQ(sink.engine.unknown_session.value(), 0u);
  // Stale handle after destroy: nullopt, and every miss is counted.
  ASSERT_TRUE(engine.destroy_session(id));
  EXPECT_FALSE(engine.estimate_one(id, 1.0).has_value());
  EXPECT_FALSE(engine.forecast_one(id, 0.1).has_value());
  EXPECT_FALSE(engine.swap_profile(id, profile));
  EXPECT_EQ(sink.engine.unknown_session.value(), 3u);
}

TEST(TrackerEngineTest, MatchesStandaloneTrackers) {
  // The engine is a pure scheduler: a fleet tick must produce bit-equal
  // results to N standalone trackers fed the same streams.
  TrackerEngine engine;
  const auto profile = engine.add_profile(synthetic_profile(5));
  const double fp2 = profile->positions[2].fingerprint_phase;

  const auto left = [](double t) { return -0.8 + 1.5 * (t - 1.0); };
  const auto right = [](double t) { return 0.7 - 1.2 * (t - 1.0); };

  const SessionId sa = engine.create_session(profile);
  const SessionId sb = engine.create_session(profile);
  core::ViHotTracker ref_a(profile, {});
  core::ViHotTracker ref_b(profile, {});

  feed([&](const auto& m) { engine.push_csi(sa, m); }, left, 0.9, 1.6, fp2);
  feed([&](const auto& m) { engine.push_csi(sb, m); }, right, 0.9, 1.6, fp2);
  feed([&](const auto& m) { ref_a.push_csi(m); }, left, 0.9, 1.6, fp2);
  feed([&](const auto& m) { ref_b.push_csi(m); }, right, 0.9, 1.6, fp2);

  for (double t = 1.2; t < 1.6; t += 0.05) {
    const std::span<const core::TrackResult> batch = engine.estimate_all(t);
    ASSERT_EQ(batch.size(), 2u);
    const core::TrackResult ra = ref_a.estimate(t);
    const core::TrackResult rb = ref_b.estimate(t);
    EXPECT_EQ(batch[0].valid, ra.valid);
    EXPECT_EQ(batch[1].valid, rb.valid);
    if (ra.valid) {
      EXPECT_DOUBLE_EQ(batch[0].theta_rad, ra.theta_rad);
    }
    if (rb.valid) {
      EXPECT_DOUBLE_EQ(batch[1].theta_rad, rb.theta_rad);
    }
  }
}

TEST(TrackerEngineTest, ThreadCountDoesNotChangeResults) {
  const auto trajectory = [](std::size_t s) {
    return [s](double t) {
      return -0.8 + (1.0 + 0.15 * static_cast<double>(s)) * (t - 1.0);
    };
  };
  constexpr std::size_t kSessions = 8;

  auto run_fleet = [&](std::size_t threads) {
    TrackerEngine engine({threads});
    const auto profile = engine.add_profile(synthetic_profile(5));
    const double fp = profile->positions[2].fingerprint_phase;
    std::vector<SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids.push_back(engine.create_session(profile));
      feed([&](const auto& m) { engine.push_csi(ids.back(), m); },
           trajectory(s), 0.9, 1.6, fp);
    }
    std::vector<core::TrackResult> all;
    for (double t = 1.2; t < 1.6; t += 0.05) {
      const auto batch = engine.estimate_all(t);
      all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
  };

  const std::vector<core::TrackResult> inline_results = run_fleet(0);
  const std::vector<core::TrackResult> pooled_results = run_fleet(4);
  ASSERT_EQ(inline_results.size(), pooled_results.size());
  for (std::size_t i = 0; i < inline_results.size(); ++i) {
    EXPECT_EQ(inline_results[i].valid, pooled_results[i].valid);
    EXPECT_DOUBLE_EQ(inline_results[i].theta_rad,
                     pooled_results[i].theta_rad);
  }
}

TEST(TrackerEngineTest, LoneSessionBorrowsPoolWithIdenticalResults) {
  // A fleet of one gets no inter-session parallelism, so estimate_all
  // lends the pool to the lone session's segment search (the matcher's
  // candidate-length loop fans out). The estimates must stay bit-equal
  // to the inline engine — parallel matching may only change speed.
  const auto theta = [](double t) { return -0.7 + 1.1 * (t - 1.0); };
  auto run_lone = [&](std::size_t threads, bool lend) {
    TrackerEngine::Config cfg;
    cfg.num_threads = threads;
    cfg.parallel_single_session = lend;
    TrackerEngine engine(cfg);
    const auto profile = engine.add_profile(synthetic_profile(5));
    const double fp = profile->positions[2].fingerprint_phase;
    const SessionId id = engine.create_session(profile);
    feed([&](const auto& m) { engine.push_csi(id, m); }, theta, 0.9, 1.6,
         fp);
    std::vector<core::TrackResult> all;
    for (double t = 1.2; t < 1.6; t += 0.05) {
      const auto batch = engine.estimate_all(t);
      all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
  };

  const auto inline_results = run_lone(0, true);
  const auto lent_results = run_lone(4, true);
  const auto unlent_results = run_lone(4, false);
  ASSERT_EQ(inline_results.size(), lent_results.size());
  ASSERT_EQ(inline_results.size(), unlent_results.size());
  for (std::size_t i = 0; i < inline_results.size(); ++i) {
    EXPECT_EQ(inline_results[i].valid, lent_results[i].valid);
    EXPECT_DOUBLE_EQ(inline_results[i].theta_rad,
                     lent_results[i].theta_rad);
    EXPECT_DOUBLE_EQ(inline_results[i].raw.match_distance,
                     lent_results[i].raw.match_distance);
    EXPECT_EQ(inline_results[i].raw.match_start,
              lent_results[i].raw.match_start);
    EXPECT_EQ(inline_results[i].raw.match_length,
              lent_results[i].raw.match_length);
    EXPECT_DOUBLE_EQ(inline_results[i].theta_rad,
                     unlent_results[i].theta_rad);
  }
}

TEST(TrackerEngineTest, ConcurrentProducersAndBatchTicks) {
  // Producers push CSI into their own sessions while the consumer thread
  // ticks estimate_all: the per-session locks must keep this race-free
  // (run under TSan by tools/run_checks.sh).
  TrackerEngine engine({2});
  const auto profile = engine.add_profile(synthetic_profile(5));
  const double fp = profile->positions[2].fingerprint_phase;

  constexpr std::size_t kProducers = 4;
  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kProducers; ++s) {
    ids.push_back(engine.create_session(profile));
  }

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kProducers; ++s) {
    producers.emplace_back([&, s] {
      const auto theta = [s](double t) {
        return -0.5 + (0.8 + 0.2 * static_cast<double>(s)) * t;
      };
      feed([&](const auto& m) { engine.push_csi(ids[s], m); }, theta, 0.0,
           1.5, fp);
    });
  }

  std::size_t valid_results = 0;
  for (int tick = 0; tick < 40; ++tick) {
    const auto batch = engine.estimate_all(0.05 * tick);
    ASSERT_EQ(batch.size(), kProducers);
    for (const core::TrackResult& r : batch) valid_results += r.valid;
  }
  for (std::thread& p : producers) p.join();

  // After all producers finished, a final tick sees full streams.
  const auto final_batch = engine.estimate_all(1.45);
  for (const core::TrackResult& r : final_batch) valid_results += r.valid;
  EXPECT_GT(valid_results, 0u);
}

TEST(TrackerEngineTest, RejectsAndCountsOutOfOrderFeeds) {
  // Regression for the debug-only TimeSeries::push assert: in release
  // builds a stale sample silently corrupted the time-ordered buffers.
  // The engine must reject it (false) and count the drop.
  obs::Sink sink;
  TrackerEngine engine({0, &sink});
  const auto profile = engine.add_profile(synthetic_profile(3));
  const SessionId id = engine.create_session(profile);

  EXPECT_TRUE(engine.push_csi(id, measurement(1.0, 0.1)));
  EXPECT_TRUE(engine.push_csi(id, measurement(1.1, 0.1)));
  EXPECT_FALSE(engine.push_csi(id, measurement(0.5, 0.1)));  // stale
  EXPECT_TRUE(engine.push_csi(id, measurement(1.2, 0.1)));
  EXPECT_EQ(sink.engine.out_of_order_csi.value(), 1u);
  EXPECT_EQ(sink.engine.csi_frames.value(), 3u);

  imu::ImuSample imu_sample;
  imu_sample.t = 2.0;
  EXPECT_TRUE(engine.push_imu(id, imu_sample));
  imu_sample.t = 1.5;
  EXPECT_FALSE(engine.push_imu(id, imu_sample));
  EXPECT_EQ(sink.engine.out_of_order_imu.value(), 1u);

  camera::CameraTracker::Estimate cam;
  cam.t = 2.0;
  EXPECT_TRUE(engine.push_camera(id, cam));
  cam.t = 1.0;
  EXPECT_FALSE(engine.push_camera(id, cam));
  EXPECT_EQ(sink.engine.out_of_order_camera.value(), 1u);

  // Ordering is per-stream and per-session: a second session with an
  // earlier clock is unaffected.
  const SessionId other = engine.create_session(profile);
  EXPECT_TRUE(engine.push_csi(other, measurement(0.1, 0.1)));
}

TEST(TrackerEngineTest, PopulatesEngineMetrics) {
  obs::Sink sink;
  TrackerEngine engine({2, &sink});
  const auto profile = engine.add_profile(synthetic_profile(3));
  const double fp = profile->positions[1].fingerprint_phase;

  const SessionId a = engine.create_session(profile);
  const SessionId b = engine.create_session(profile);
  EXPECT_EQ(sink.engine.sessions_created.value(), 2u);

  feed([&](const auto& m) { engine.push_csi(a, m); },
       [](double t) { return -0.5 + 0.8 * t; }, 0.0, 1.0, fp);
  // Feed gaps are observed from the second accepted frame onward.
  EXPECT_GT(sink.engine.csi_frames.value(), 2u);
  EXPECT_EQ(sink.engine.csi_feed_gap_ms.count(),
            sink.engine.csi_frames.value() - 1);
  EXPECT_NEAR(sink.engine.csi_feed_gap_ms.max(), 4.0, 0.5);

  (void)engine.estimate_all(0.9);
  (void)engine.estimate_all(0.95);
  EXPECT_EQ(sink.engine.batches.value(), 2u);
  EXPECT_EQ(sink.engine.batch_estimates.value(), 4u);  // 2 sessions x 2
  EXPECT_EQ(sink.engine.batch_latency_us.count(), 2u);
  EXPECT_GT(sink.engine.batch_latency_us.max(), 0.0);

  // The batch work is visible in the per-worker drain counters.
  std::uint64_t drained_total = 0;
  for (const std::uint64_t n : engine.worker_items_drained()) {
    drained_total += n;
  }
  EXPECT_EQ(drained_total, 4u);

  // Sessions inherit the engine sink: stage counters populate too.
  EXPECT_EQ(sink.tracker.estimates.value(), 4u);

  EXPECT_TRUE(engine.destroy_session(b));
  EXPECT_EQ(sink.engine.sessions_destroyed.value(), 1u);
}

TEST(TrackerEngineTest, NullSinkIsZeroOverheadPath) {
  // No sink: everything behaves as before, nothing crashes, results are
  // identical to the sinked engine (metrics must never perturb outputs).
  obs::Sink sink;
  TrackerEngine plain({0});
  TrackerEngine observed({0, &sink});
  const auto profile_a = plain.add_profile(synthetic_profile(3));
  const auto profile_b = observed.add_profile(synthetic_profile(3));
  const double fp = profile_a->positions[1].fingerprint_phase;
  const SessionId pa = plain.create_session(profile_a);
  const SessionId ob = observed.create_session(profile_b);
  const auto theta = [](double t) { return -0.5 + 0.9 * t; };
  feed([&](const auto& m) { plain.push_csi(pa, m); }, theta, 0.0, 1.2, fp);
  feed([&](const auto& m) { observed.push_csi(ob, m); }, theta, 0.0, 1.2,
       fp);
  for (double t = 0.8; t < 1.2; t += 0.05) {
    const core::TrackResult rp = *plain.estimate_one(pa, t);
    const core::TrackResult ro = *observed.estimate_one(ob, t);
    EXPECT_EQ(rp.valid, ro.valid);
    if (rp.valid) EXPECT_DOUBLE_EQ(rp.theta_rad, ro.theta_rad);
  }
}

TEST(TrackerEngineTest, SharedProfileOutlivesEngine) {
  std::shared_ptr<const core::CsiProfile> profile;
  {
    TrackerEngine engine;
    profile = engine.add_profile(synthetic_profile(3));
    (void)engine.create_session(profile);
  }
  // The engine (and its sessions) are gone; the caller's reference must
  // still be alive and intact.
  ASSERT_TRUE(profile);
  EXPECT_EQ(profile->size(), 3u);
}

}  // namespace
}  // namespace vihot::engine
