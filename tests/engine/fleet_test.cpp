// FleetRouter tests (ctest label: fleet).
//
// The fleet tier is a routing optimization, never an algorithmic one:
// sessions are independent, so per-session results must be bit-identical
// for ANY shard count — the invariance test pins that down. The threaded
// tests (churn racing offer_* and fleet ticks across >= 2 shards, with
// mid-drive profile hot-swaps) are the TSan targets of the fleet label
// in tools/run_checks.sh.
#include "engine/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/sink.h"
#include "tests/core/test_helpers.h"

namespace vihot::engine {
namespace {

using core::testing::synthetic_phase;
using core::testing::synthetic_profile;

wifi::CsiMeasurement measurement(double t, double phi,
                                 std::size_t subcarriers = 4) {
  wifi::CsiMeasurement m;
  m.t = t;
  m.h[0].assign(subcarriers, std::polar(1.0, phi));
  m.h[1].assign(subcarriers, {1.0, 0.0});
  return m;
}

/// Streams a phase trajectory into `push` at 200 Hz.
template <typename PushFn, typename ThetaFn>
void feed(PushFn&& push, ThetaFn&& theta, double t0, double t1,
          double fingerprint = 0.0) {
  for (double t = t0; t < t1; t += 0.005) {
    push(measurement(t, synthetic_phase(theta(t), fingerprint)));
  }
}

FleetConfig shard_config(std::size_t shards, obs::Sink* sink = nullptr) {
  FleetConfig fc;
  fc.shards = shards;
  fc.sink = sink;
  return fc;
}

// ------------------------------------------------------------- routing

TEST(FleetRouterTest, ZeroShardsClampToOne) {
  FleetRouter fleet(shard_config(0));
  EXPECT_EQ(fleet.num_shards(), 1u);
}

TEST(FleetRouterTest, GlobalIdsSpreadAcrossShards) {
  FleetRouter fleet(shard_config(4));
  const auto profile = fleet.add_profile(synthetic_profile(3));
  std::vector<std::size_t> per_shard(fleet.num_shards(), 0);
  for (int k = 0; k < 64; ++k) {
    ++per_shard[fleet.shard_of(fleet.create_session(profile))];
  }
  EXPECT_EQ(fleet.session_count(), 64u);
  // The Fibonacci mix must actually spread sequential ids.
  for (const std::size_t n : per_shard) EXPECT_LT(n, 64u);
  std::size_t shard_sum = 0;
  for (std::size_t s = 0; s < fleet.num_shards(); ++s) {
    shard_sum += fleet.shard(s).session_count();
  }
  EXPECT_EQ(shard_sum, 64u);
}

TEST(FleetRouterTest, LifecycleAndMergedOrder) {
  FleetRouter fleet(shard_config(3));
  const auto profile = fleet.add_profile(synthetic_profile(3));
  const SessionId a = fleet.create_session(profile);
  const SessionId b = fleet.create_session(profile);
  const SessionId c = fleet.create_session(profile);
  EXPECT_EQ(fleet.session_ids(), (std::vector<SessionId>{a, b, c}));
  EXPECT_EQ(fleet.estimate_all(0.1).size(), 3u);

  EXPECT_TRUE(fleet.destroy_session(b));
  EXPECT_FALSE(fleet.destroy_session(b));  // already gone
  EXPECT_EQ(fleet.session_ids(), (std::vector<SessionId>{a, c}));
  EXPECT_EQ(fleet.estimate_all(0.2).size(), 2u);

  const SessionId d = fleet.create_session(profile);
  EXPECT_NE(d, b);  // global ids are never reused
  EXPECT_EQ(fleet.session_ids(), (std::vector<SessionId>{a, c, d}));
}

TEST(FleetRouterTest, UnknownIdsAreSurfacedAndCounted) {
  obs::Sink sink;
  FleetRouter fleet(shard_config(2, &sink));
  EXPECT_FALSE(fleet.push_csi(42, measurement(0.0, 0.0)));
  EXPECT_FALSE(fleet.offer_csi(42, measurement(0.0, 0.0)));
  EXPECT_FALSE(fleet.estimate_one(42, 1.0).has_value());
  EXPECT_FALSE(fleet.forecast_one(42, 0.1).has_value());
  EXPECT_FALSE(fleet.swap_profile(42, nullptr));
  EXPECT_FALSE(fleet.destroy_session(42));
  EXPECT_EQ(sink.engine.unknown_session.value(), 6u);
}

// ------------------------------------------------ shard-count invariance

TEST(FleetRouterTest, ResultsAreInvariantUnderShardCount) {
  // Sessions are independent: serving the same feeds over 1 shard and
  // over N shards (parallel ticks) must produce bit-identical results,
  // session by session, tick by tick.
  const std::size_t kSessions = 6;
  const auto run = [&](std::size_t shards, bool parallel) {
    FleetConfig fc = shard_config(shards);
    fc.parallel_shards = parallel;
    FleetRouter fleet(fc);
    const auto profile = fleet.add_profile(synthetic_profile(5));
    const double fp = profile->positions[2].fingerprint_phase;
    std::vector<SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids.push_back(fleet.create_session(profile));
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      const double rate = 0.5 + 0.1 * static_cast<double>(s);
      feed([&](const auto& m) { fleet.push_csi(ids[s], m); },
           [&](double t) { return -0.6 + rate * (t - 0.5); }, 0.4, 2.0, fp);
    }
    std::vector<core::TrackResult> all;
    for (double t = 1.0; t < 2.0; t += 0.1) {
      const auto span = fleet.estimate_all(t);
      all.insert(all.end(), span.begin(), span.end());
    }
    return all;
  };

  const std::vector<core::TrackResult> one = run(1, false);
  const std::vector<core::TrackResult> three = run(3, true);
  const std::vector<core::TrackResult> five = run(5, false);
  ASSERT_EQ(one.size(), three.size());
  ASSERT_EQ(one.size(), five.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].valid, three[i].valid) << "i=" << i;
    EXPECT_EQ(one[i].valid, five[i].valid) << "i=" << i;
    if (one[i].valid) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(std::memcmp(&one[i].theta_rad, &three[i].theta_rad,
                            sizeof(double)),
                0)
          << "i=" << i;
      EXPECT_EQ(std::memcmp(&one[i].theta_rad, &five[i].theta_rad,
                            sizeof(double)),
                0)
          << "i=" << i;
    }
    EXPECT_EQ(one[i].mode, three[i].mode) << "i=" << i;
    EXPECT_EQ(one[i].position_slot, five[i].position_slot) << "i=" << i;
  }
}

// --------------------------------------------------- async ingest routing

TEST(FleetRouterTest, OfferedSamplesRouteAndDrainAcrossShards) {
  obs::Sink sink;
  FleetConfig fc = shard_config(3, &sink);
  fc.ingest.csi_capacity = 64;
  fc.ingest.imu_capacity = 64;
  FleetRouter fleet(fc);
  const auto profile = fleet.add_profile(synthetic_profile(3));
  std::vector<SessionId> ids;
  for (int s = 0; s < 9; ++s) ids.push_back(fleet.create_session(profile));
  for (int k = 0; k < 5; ++k) {
    for (const SessionId id : ids) {
      EXPECT_TRUE(fleet.offer_csi(id, measurement(0.01 * k, 0.1)));
    }
  }
  EXPECT_EQ(sink.ingest.csi_enqueued.value(), 45u);
  EXPECT_EQ(fleet.drain(), 45u);
  EXPECT_EQ(sink.ingest.drained_csi.value(), 45u);
  EXPECT_EQ(fleet.drain(), 0u);
}

// -------------------------------------------------------- profile sharing

TEST(FleetRouterTest, ShardsShareOneProfileStore) {
  obs::Sink sink;
  FleetRouter fleet(shard_config(4, &sink));
  // Interning through the fleet and through any shard's engine hits the
  // same store: one allocation fleet-wide.
  const auto a = fleet.add_profile(synthetic_profile(3));
  const auto b = fleet.shard(2).add_profile(synthetic_profile(3));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(sink.profile_store.interned.value(), 1u);
  EXPECT_EQ(sink.profile_store.dedup_hits.value(), 1u);
  EXPECT_EQ(fleet.profile_store().live_count(), 1u);
}

TEST(FleetRouterTest, HotSwapMidDriveRelocksOnNewProfile) {
  obs::Sink sink;
  FleetRouter fleet(shard_config(2, &sink));
  const auto base = fleet.add_profile(synthetic_profile(5));
  const double fp = base->positions[2].fingerprint_phase;
  const SessionId id = fleet.create_session(base);

  // Track against the base profile first.
  feed([&](const auto& m) { fleet.push_csi(id, m); },
       [](double t) { return -0.5 + 0.8 * (t - 0.5); }, 0.4, 1.6, fp);
  const auto before = fleet.estimate_one(id, 1.5);
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(before->valid);

  // COW recalibration: a shifted copy interned as a NEW snapshot; the
  // base stays untouched for every other session.
  const auto next = fleet.profile_store().cow(*base, [](core::CsiProfile& p) {
    for (auto& pos : p.positions) pos.fingerprint_phase += 0.05;
  });
  ASSERT_NE(next.get(), base.get());
  ASSERT_TRUE(fleet.swap_profile(id, next));
  EXPECT_EQ(sink.engine.profile_swaps.value(), 1u);

  // The swap restarts match state: the session re-locks against the new
  // profile from fresh feeds and serves valid estimates again.
  feed([&](const auto& m) { fleet.push_csi(id, m); },
       [](double t) { return -0.5 + 0.8 * (t - 2.0); }, 1.9, 3.4,
       fp + 0.05);
  const auto after = fleet.estimate_one(id, 3.3);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->valid);
}

TEST(FleetRouterTest, SwappedOutProfileIsReleased) {
  FleetRouter fleet(shard_config(2));
  std::weak_ptr<const core::CsiProfile> watch;
  SessionId id = kNoSession;
  {
    const auto base = fleet.add_profile(synthetic_profile(3));
    watch = base;
    id = fleet.create_session(base);
  }
  EXPECT_FALSE(watch.expired());  // the session still serves it
  core::CsiProfile replacement = synthetic_profile(4);
  ASSERT_TRUE(
      fleet.swap_profile(id, fleet.add_profile(std::move(replacement))));
  // Weak store entries never pin: with the session swapped over and the
  // caller's reference gone, the old snapshot's memory is released.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(fleet.profile_store().live_count(), 1u);
}

// ------------------------------------------------- churn under concurrency

TEST(FleetRouterTest, ChurnUnderConcurrentProducersTicksAndSwaps) {
  // The fleet-tier torture test (TSan target): stable sessions fed by
  // concurrent producer threads through the async rings, a churn thread
  // creating/estimating/destroying sessions, a swap thread hot-swapping
  // profiles mid-drive — all racing fleet-wide parallel-shard ticks.
  obs::Sink sink;
  FleetConfig fc = shard_config(3, &sink);
  fc.ingest.csi_capacity = 256;
  fc.ingest.imu_capacity = 256;
  FleetRouter fleet(fc);
  const auto profile = fleet.add_profile(synthetic_profile(3));
  const auto alt = fleet.profile_store().cow(
      *profile, [](core::CsiProfile& p) { p.reference_phase += 0.01; });

  std::vector<SessionId> stable;
  for (int s = 0; s < 4; ++s) stable.push_back(fleet.create_session(profile));

  std::atomic<bool> stop{false};
  auto producer = [&](std::size_t a, std::size_t b) {
    wifi::CsiMeasurement m = measurement(0.0, 0.2);
    imu::ImuSample imu{};
    for (double t = 0.0; !stop.load(std::memory_order_acquire); t += 0.002) {
      m.t = t;
      (void)fleet.offer_csi(stable[a], m);
      (void)fleet.offer_csi(stable[b], m);
      imu.t = t;
      (void)fleet.offer_imu(stable[a], imu);
      (void)fleet.offer_imu(stable[b], imu);
    }
  };
  std::thread p1(producer, 0, 1);
  std::thread p2(producer, 2, 3);
  std::thread churn([&] {
    for (int k = 0; k < 30; ++k) {
      const SessionId id = fleet.create_session(profile);
      (void)fleet.push_csi(id, measurement(0.1 * k, 0.2));
      (void)fleet.estimate_one(id, 0.1 * k);
      EXPECT_TRUE(fleet.destroy_session(id));
    }
  });
  std::thread swapper([&] {
    for (int k = 0; k < 20; ++k) {
      (void)fleet.swap_profile(stable[k % stable.size()],
                               (k % 2) ? alt : profile);
    }
  });
  for (int k = 0; k < 100; ++k) {
    (void)fleet.estimate_all(0.05 * (k + 1));
  }
  churn.join();
  swapper.join();
  stop.store(true, std::memory_order_release);
  p1.join();
  p2.join();
  EXPECT_EQ(fleet.session_count(), stable.size());
  EXPECT_EQ(sink.engine.sessions_destroyed.value(), 30u);
  EXPECT_EQ(sink.engine.profile_swaps.value(), 20u);
  // Overload decisions are all accounted: every enqueued sample is
  // either drained or discarded with its session.
  (void)fleet.drain();
}

}  // namespace
}  // namespace vihot::engine
