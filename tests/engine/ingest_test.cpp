// Async ingest tier tests: the bounded ring, the per-session overload
// policies, the session->lane router, the engine's offer/drain path and
// its equivalence with the synchronous push path, the non-finite feed
// guard, and session churn under concurrent producers (a TSan target).
#include "engine/ingest.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <limits>
#include <thread>
#include <vector>

#include "engine/ingest_ring.h"
#include "engine/tracker_engine.h"
#include "obs/sink.h"
#include "tests/core/test_helpers.h"

namespace vihot::engine {
namespace {

using core::testing::synthetic_phase;
using core::testing::synthetic_profile;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

wifi::CsiMeasurement measurement(double t, double phi,
                                 std::size_t subcarriers = 4) {
  wifi::CsiMeasurement m;
  m.t = t;
  m.h[0].assign(subcarriers, std::polar(1.0, phi));
  m.h[1].assign(subcarriers, {1.0, 0.0});
  return m;
}

// ------------------------------------------------------------ IngestRing

TEST(IngestRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(IngestRing<int>(5).capacity(), 8u);
  EXPECT_EQ(IngestRing<int>(8).capacity(), 8u);
  EXPECT_EQ(IngestRing<int>(1).capacity(), 1u);
  EXPECT_EQ(IngestRing<int>(0).capacity(), 0u);
}

TEST(IngestRingTest, FifoOrderAndFullRejection) {
  IngestRing<int> ring(4);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.try_push(v));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size(), 4u);
  for (int want = 0; want < 4; ++want) {
    int got = -1;
    EXPECT_TRUE(ring.try_pop([&](const int& v) { got = v; }));
    EXPECT_EQ(got, want);
  }
  EXPECT_FALSE(ring.try_pop([](const int&) {}));
  // Recycled cells accept a second lap.
  EXPECT_TRUE(ring.try_push(7));
  EXPECT_EQ(ring.size(), 1u);
}

TEST(IngestRingTest, PushDisplacingDropsTheOldest) {
  IngestRing<int> ring(4);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.try_push(v));
  EXPECT_EQ(ring.push_displacing(4), 1u);  // displaced value 0
  EXPECT_EQ(ring.size(), 4u);
  std::vector<int> out;
  ring.drain([&](const int& v) { out.push_back(v); },
             /*max=*/16);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

TEST(IngestRingTest, DrainHonorsTheSweepBound) {
  IngestRing<int> ring(8);
  for (int v = 0; v < 6; ++v) EXPECT_TRUE(ring.try_push(v));
  std::vector<int> out;
  EXPECT_EQ(ring.drain([&](const int& v) { out.push_back(v); }, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  EXPECT_EQ(ring.size(), 4u);
}

TEST(IngestRingTest, SpscThreadedTransfersEverythingInOrder) {
  IngestRing<int> ring(64);
  constexpr int kCount = 20000;
  std::thread producer([&] {
    for (int v = 0; v < kCount; ++v) {
      while (!ring.try_push(v)) std::this_thread::yield();
    }
  });
  int expect = 0;
  while (expect < kCount) {
    ring.try_pop([&](const int& v) {
      EXPECT_EQ(v, expect);
      ++expect;
    });
  }
  producer.join();
  EXPECT_EQ(ring.size(), 0u);
}

// ---------------------------------------------------------- finite guard

TEST(FiniteSampleTest, FlagsNanAndInfAcrossAllStreams) {
  EXPECT_TRUE(finite_sample(measurement(1.0, 0.3)));
  EXPECT_FALSE(finite_sample(measurement(kNan, 0.3)));
  wifi::CsiMeasurement bad = measurement(1.0, 0.3);
  bad.h[0][2] = {kInf, 0.0};
  EXPECT_FALSE(finite_sample(bad));

  imu::ImuSample imu{};
  imu.t = 1.0;
  EXPECT_TRUE(finite_sample(imu));
  imu.gyro_yaw_rad_s = kNan;
  EXPECT_FALSE(finite_sample(imu));
  imu.gyro_yaw_rad_s = 0.0;
  imu.t = kInf;
  EXPECT_FALSE(finite_sample(imu));

  camera::CameraTracker::Estimate cam{};
  cam.t = 2.0;
  EXPECT_TRUE(finite_sample(cam));
  cam.theta = kNan;
  EXPECT_FALSE(finite_sample(cam));
}

// --------------------------------------------------------- SessionIngest

IngestConfig small_config(OverloadPolicy policy, std::size_t capacity = 4) {
  IngestConfig c;
  c.csi_capacity = capacity;
  c.imu_capacity = capacity;
  c.policy = policy;
  return c;
}

TEST(SessionIngestTest, DropNewestRejectsWhenFullAndCounts) {
  obs::IngestStats stats;
  SessionIngest ingest(small_config(OverloadPolicy::kDropNewest), &stats);
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(ingest.offer_csi(measurement(0.1 * k, 0.0)));
  }
  EXPECT_FALSE(ingest.offer_csi(measurement(0.5, 0.0)));
  EXPECT_EQ(stats.csi_enqueued.value(), 4u);
  EXPECT_EQ(stats.csi_dropped_newest.value(), 1u);
  EXPECT_EQ(stats.csi_dropped_oldest.value(), 0u);
  EXPECT_GE(stats.high_watermark.value(), 1u);
}

TEST(SessionIngestTest, DropOldestKeepsTheFreshestSamples) {
  obs::IngestStats stats;
  SessionIngest ingest(small_config(OverloadPolicy::kDropOldest), &stats);
  for (int k = 0; k < 6; ++k) {
    EXPECT_TRUE(ingest.offer_csi(measurement(0.1 * k, 0.0)));
  }
  EXPECT_EQ(stats.csi_dropped_oldest.value(), 2u);
  std::vector<double> times;
  ingest.drain([&](const wifi::CsiMeasurement& m) { times.push_back(m.t); },
               [](const imu::ImuSample&) {});
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times.front(), 0.2);  // 0.0 and 0.1 were displaced
  EXPECT_DOUBLE_EQ(times.back(), 0.5);
  EXPECT_EQ(stats.drained_csi.value(), 4u);
  EXPECT_GE(stats.drain_passes.value(), 1u);
}

TEST(SessionIngestTest, BlockTimesOutInsteadOfWedging) {
  obs::IngestStats stats;
  IngestConfig config = small_config(OverloadPolicy::kBlock, 2);
  config.max_block_spins = 8;  // nobody drains: give up fast
  SessionIngest ingest(config, &stats);
  EXPECT_TRUE(ingest.offer_csi(measurement(0.0, 0.0)));
  EXPECT_TRUE(ingest.offer_csi(measurement(0.1, 0.0)));
  EXPECT_FALSE(ingest.offer_csi(measurement(0.2, 0.0)));
  EXPECT_EQ(stats.block_timeouts.value(), 1u);
  EXPECT_GE(stats.block_retries.value(), 8u);
}

TEST(SessionIngestTest, ZeroCapacityDisablesTheTier) {
  obs::IngestStats stats;
  IngestConfig config = small_config(OverloadPolicy::kDropOldest, 0);
  SessionIngest ingest(config, &stats);
  EXPECT_FALSE(ingest.enabled());
  EXPECT_FALSE(ingest.csi_enabled());
  EXPECT_FALSE(ingest.imu_enabled());
  EXPECT_EQ(ingest.drain([](const wifi::CsiMeasurement&) {},
                         [](const imu::ImuSample&) {}),
            0u);
}

TEST(SessionIngestTest, ImuOnlyCapacityKeepsImuStreamAsync) {
  // Regression: {csi: 0, imu: N}. The old single CSI-gated enabled()
  // reported the whole tier off, and drain() — gated on the same
  // predicate — never swept the IMU ring: anything offered there was
  // stranded forever. Gating is per stream now.
  obs::IngestStats stats;
  IngestConfig config = small_config(OverloadPolicy::kDropOldest, 64);
  config.csi_capacity = 0;
  SessionIngest ingest(config, &stats);
  EXPECT_FALSE(ingest.csi_enabled());
  EXPECT_TRUE(ingest.imu_enabled());
  EXPECT_TRUE(ingest.enabled());  // a drain sweep CAN find work

  imu::ImuSample s{};
  for (int k = 0; k < 5; ++k) {
    s.t = 0.1 * k;
    EXPECT_TRUE(ingest.offer_imu(s));
  }
  EXPECT_EQ(ingest.imu_depth(), 5u);
  std::size_t drained_imu = 0;
  EXPECT_EQ(ingest.drain([](const wifi::CsiMeasurement&) {},
                         [&](const imu::ImuSample&) { ++drained_imu; }),
            5u);
  EXPECT_EQ(drained_imu, 5u);
  EXPECT_EQ(ingest.imu_depth(), 0u);
}

TEST(SessionIngestTest, CsiOnlyCapacityKeepsCsiStreamAsync) {
  // The mirrored mix: {csi: N, imu: 0} runs CSI async, IMU off.
  obs::IngestStats stats;
  IngestConfig config = small_config(OverloadPolicy::kDropOldest, 64);
  config.imu_capacity = 0;
  SessionIngest ingest(config, &stats);
  EXPECT_TRUE(ingest.csi_enabled());
  EXPECT_FALSE(ingest.imu_enabled());
  EXPECT_TRUE(ingest.enabled());
  EXPECT_TRUE(ingest.offer_csi(measurement(0.0, 0.1)));
  std::size_t drained_csi = 0;
  EXPECT_EQ(ingest.drain([&](const wifi::CsiMeasurement&) { ++drained_csi; },
                         [](const imu::ImuSample&) {}),
            1u);
  EXPECT_EQ(drained_csi, 1u);
}

// ------------------------------------------------------------ FeedRouter

TEST(FeedRouterTest, EverySessionLivesInExactlyOneLane) {
  FeedRouter<int> router(4);
  ASSERT_EQ(router.num_lanes(), 4u);
  std::vector<int> sessions(100);
  for (std::uint64_t id = 0; id < sessions.size(); ++id) {
    router.assign(id, &sessions[id]);
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l < router.num_lanes(); ++l) {
    total += router.lane(l).size();
    for (const int* s : router.lane(l)) {
      const auto id = static_cast<std::uint64_t>(s - sessions.data());
      EXPECT_EQ(router.lane_of(id), l);
    }
  }
  EXPECT_EQ(total, sessions.size());
  // The Fibonacci mix must actually spread sequential ids: no lane may
  // hold the whole fleet.
  for (std::size_t l = 0; l < router.num_lanes(); ++l) {
    EXPECT_LT(router.lane(l).size(), sessions.size());
  }
  router.remove(7, &sessions[7]);
  total = 0;
  for (std::size_t l = 0; l < router.num_lanes(); ++l) {
    total += router.lane(l).size();
  }
  EXPECT_EQ(total, sessions.size() - 1);
}

// ------------------------------------------- engine offer / drain / guard

TEST(EngineIngestTest, OfferedSamplesApplyOnDrain) {
  obs::Sink sink;
  TrackerEngine::Config cfg;
  cfg.sink = &sink;
  cfg.ingest.csi_capacity = 64;
  cfg.ingest.imu_capacity = 64;
  TrackerEngine engine(cfg);
  const auto profile = engine.add_profile(synthetic_profile(3));
  const SessionId id = engine.create_session(profile);

  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(engine.offer_csi(id, measurement(0.01 * k, 0.1)));
  }
  EXPECT_EQ(sink.ingest.csi_enqueued.value(), 10u);
  EXPECT_EQ(sink.ingest.drained_csi.value(), 0u);
  EXPECT_EQ(engine.drain(), 10u);
  EXPECT_EQ(sink.ingest.drained_csi.value(), 10u);
  EXPECT_EQ(engine.drain(), 0u);  // empty scan: nothing left

  EXPECT_FALSE(engine.offer_csi(kNoSession + 999, measurement(1.0, 0.1)));
}

TEST(EngineIngestTest, EstimateAllDrainsBeforeTicking) {
  obs::Sink sink;
  TrackerEngine::Config cfg;
  cfg.sink = &sink;
  cfg.ingest.csi_capacity = 64;
  TrackerEngine engine(cfg);
  const auto profile = engine.add_profile(synthetic_profile(3));
  const SessionId id = engine.create_session(profile);
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(engine.offer_csi(id, measurement(0.01 * k, 0.1)));
  }
  (void)engine.estimate_all(0.2);
  EXPECT_EQ(sink.ingest.drained_csi.value(), 20u);
}

TEST(EngineIngestTest, ZeroCapacityOfferFallsBackToSyncPush) {
  obs::Sink sink;
  TrackerEngine::Config cfg;
  cfg.sink = &sink;
  cfg.ingest.csi_capacity = 0;
  cfg.ingest.imu_capacity = 0;
  TrackerEngine engine(cfg);
  const auto profile = engine.add_profile(synthetic_profile(3));
  const SessionId id = engine.create_session(profile);
  EXPECT_TRUE(engine.offer_csi(id, measurement(0.1, 0.2)));
  imu::ImuSample imu{};
  imu.t = 0.1;
  EXPECT_TRUE(engine.offer_imu(id, imu));
  // Applied synchronously: nothing was enqueued, nothing to drain.
  EXPECT_EQ(sink.ingest.csi_enqueued.value(), 0u);
  EXPECT_EQ(engine.drain(), 0u);
  // The sync ordering guard still applies through offer_*.
  EXPECT_FALSE(engine.offer_csi(id, measurement(0.05, 0.2)));
}

TEST(EngineIngestTest, MixedCapacityRunsEachStreamOnItsOwnPath) {
  // Regression for the fleet-tier version of the same bug: with
  // {csi: 0, imu: N} the engine's drain step early-outed on the CSI
  // capacity alone, so offered IMU samples sat in their rings forever
  // while offer_csi degraded to sync — the async IMU stream was silently
  // disabled. Each mixed-capacity combination must run each stream on
  // the path its own capacity selects.
  struct Combo {
    std::size_t csi_cap;
    std::size_t imu_cap;
  };
  const Combo combos[] = {{0, 64}, {64, 0}, {64, 64}, {0, 0}};
  for (const Combo& combo : combos) {
    SCOPED_TRACE(::testing::Message()
                 << "csi_capacity=" << combo.csi_cap
                 << " imu_capacity=" << combo.imu_cap);
    obs::Sink sink;
    TrackerEngine::Config cfg;
    cfg.sink = &sink;
    cfg.ingest.csi_capacity = combo.csi_cap;
    cfg.ingest.imu_capacity = combo.imu_cap;
    TrackerEngine engine(cfg);
    const auto profile = engine.add_profile(synthetic_profile(3));
    const SessionId id = engine.create_session(profile);

    const std::size_t n = 8;
    imu::ImuSample s{};
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_TRUE(engine.offer_csi(id, measurement(0.01 * k, 0.1)));
      s.t = 0.01 * k;
      EXPECT_TRUE(engine.offer_imu(id, s));
    }
    // Async streams queued; sync-fallback streams already applied.
    EXPECT_EQ(sink.ingest.csi_enqueued.value(), combo.csi_cap ? n : 0u);
    EXPECT_EQ(sink.ingest.imu_enqueued.value(), combo.imu_cap ? n : 0u);
    const std::size_t sync_csi = combo.csi_cap ? 0u : n;
    const std::size_t sync_imu = combo.imu_cap ? 0u : n;
    EXPECT_EQ(sink.engine.csi_frames.value(), sync_csi);
    EXPECT_EQ(sink.engine.imu_samples.value(), sync_imu);

    // The drain applies EVERYTHING queued — no stream may be stranded.
    const std::size_t queued = (combo.csi_cap ? n : 0) +
                               (combo.imu_cap ? n : 0);
    EXPECT_EQ(engine.drain(), queued);
    EXPECT_EQ(sink.ingest.drained_csi.value(), combo.csi_cap ? n : 0u);
    EXPECT_EQ(sink.ingest.drained_imu.value(), combo.imu_cap ? n : 0u);
    EXPECT_EQ(sink.engine.csi_frames.value(), n);
    EXPECT_EQ(sink.engine.imu_samples.value(), n);
  }
}

TEST(EngineIngestTest, EstimateAllDrainsImuOnlyIngest) {
  // The tick-path variant of the regression: estimate_all()'s implicit
  // drain must also sweep an IMU-only ingest tier.
  obs::Sink sink;
  TrackerEngine::Config cfg;
  cfg.sink = &sink;
  cfg.ingest.csi_capacity = 0;
  cfg.ingest.imu_capacity = 64;
  TrackerEngine engine(cfg);
  const auto profile = engine.add_profile(synthetic_profile(3));
  const SessionId id = engine.create_session(profile);
  imu::ImuSample s{};
  for (int k = 0; k < 12; ++k) {
    s.t = 0.01 * k;
    EXPECT_TRUE(engine.offer_imu(id, s));
  }
  EXPECT_EQ(sink.ingest.drained_imu.value(), 0u);
  (void)engine.estimate_all(0.2);
  EXPECT_EQ(sink.ingest.drained_imu.value(), 12u);
}

TEST(EngineIngestTest, AsyncPathMatchesSyncPathBitExact) {
  // The async tier is a scheduling change, never an algorithmic one:
  // identical feeds through push_* and through offer_*+drain must yield
  // identical estimates.
  TrackerEngine::Config sync_cfg;
  sync_cfg.ingest.csi_capacity = 0;
  TrackerEngine sync_eng(sync_cfg);
  TrackerEngine::Config async_cfg;
  async_cfg.ingest.csi_capacity = 4096;
  async_cfg.ingest.imu_capacity = 4096;
  TrackerEngine async_eng(async_cfg);

  const auto sp = sync_eng.add_profile(synthetic_profile(3));
  const auto ap = async_eng.add_profile(synthetic_profile(3));
  const SessionId sid = sync_eng.create_session(sp);
  const SessionId aid = async_eng.create_session(ap);

  double t_feed = 0.0;
  for (double t_est = 1.0; t_est < 4.0; t_est += 0.05) {
    for (; t_feed <= t_est; t_feed += 0.005) {
      const double theta = 0.8 * std::sin(0.9 * t_feed);
      const wifi::CsiMeasurement m =
          measurement(t_feed, synthetic_phase(theta));
      ASSERT_TRUE(sync_eng.push_csi(sid, m));
      ASSERT_TRUE(async_eng.offer_csi(aid, m));
    }
    const core::TrackResult rs = sync_eng.estimate_all(t_est)[0];
    const core::TrackResult ra = async_eng.estimate_all(t_est)[0];
    ASSERT_EQ(rs.valid, ra.valid) << "t=" << t_est;
    ASSERT_EQ(rs.theta_rad, ra.theta_rad) << "t=" << t_est;
    ASSERT_EQ(rs.position_slot, ra.position_slot);
  }
}

TEST(EngineIngestTest, NonFiniteFeedsRejectedAndCounted) {
  obs::Sink sink;
  TrackerEngine::Config cfg;
  cfg.sink = &sink;
  cfg.ingest.csi_capacity = 16;
  TrackerEngine engine(cfg);
  const auto profile = engine.add_profile(synthetic_profile(3));
  const SessionId id = engine.create_session(profile);

  EXPECT_FALSE(engine.push_csi(id, measurement(kNan, 0.1)));
  wifi::CsiMeasurement poisoned = measurement(1.0, 0.1);
  poisoned.h[1][0] = {0.0, kNan};
  EXPECT_FALSE(engine.offer_csi(id, poisoned));
  EXPECT_EQ(sink.engine.non_finite_csi.value(), 2u);

  imu::ImuSample imu{};
  imu.t = kInf;
  EXPECT_FALSE(engine.push_imu(id, imu));
  imu.t = 1.0;
  imu.accel_lateral_mps2 = kNan;
  EXPECT_FALSE(engine.offer_imu(id, imu));
  EXPECT_EQ(sink.engine.non_finite_imu.value(), 2u);

  camera::CameraTracker::Estimate cam{};
  cam.t = kNan;
  EXPECT_FALSE(engine.push_camera(id, cam));
  EXPECT_EQ(sink.engine.non_finite_camera.value(), 1u);

  // A rejected sample leaves no trace downstream: nothing was queued.
  EXPECT_EQ(sink.ingest.csi_enqueued.value(), 0u);
  EXPECT_EQ(sink.ingest.imu_enqueued.value(), 0u);

  // Clean samples still flow.
  EXPECT_TRUE(engine.push_csi(id, measurement(2.0, 0.1)));
}

// ---------------------------------------------------------- churn + TSan

TEST(EngineIngestTest, SessionChurnUnderConcurrentProducersAndTicks) {
  // Sessions are created and destroyed while producer threads keep
  // offering into surviving sessions and the batch tick keeps draining.
  // Run under the tsan preset this is the ingest tier's data-race proof.
  obs::Sink sink;
  TrackerEngine::Config cfg;
  cfg.num_threads = 2;
  cfg.sink = &sink;
  cfg.ingest.csi_capacity = 64;
  cfg.ingest.imu_capacity = 64;
  TrackerEngine engine(cfg);
  const auto profile = engine.add_profile(synthetic_profile(3));
  std::vector<SessionId> stable;
  for (int s = 0; s < 4; ++s) stable.push_back(engine.create_session(profile));

  std::atomic<bool> stop{false};
  // One producer per session-pair: each ring stream keeps its single
  // producer (SPSC contract).
  auto producer = [&](std::size_t a, std::size_t b) {
    wifi::CsiMeasurement m = measurement(0.0, 0.0);
    imu::ImuSample imu{};
    double t = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      t += 0.005;
      const double phi = synthetic_phase(0.6 * std::sin(0.9 * t));
      for (std::size_t k = 0; k < m.h[0].size(); ++k) {
        m.h[0][k] = std::polar(1.0, phi);
      }
      m.t = t;
      (void)engine.offer_csi(stable[a], m);
      (void)engine.offer_csi(stable[b], m);
      imu.t = t;
      (void)engine.offer_imu(stable[a], imu);
      (void)engine.offer_imu(stable[b], imu);
    }
  };
  std::thread p1(producer, 0, 1);
  std::thread p2(producer, 2, 3);
  std::thread churn([&] {
    for (int k = 0; k < 30; ++k) {
      const SessionId id = engine.create_session(profile);
      (void)engine.push_csi(id, measurement(0.1 * k, 0.2));
      (void)engine.estimate_one(id, 0.1 * k);
      EXPECT_TRUE(engine.destroy_session(id));
    }
  });
  for (int k = 0; k < 100; ++k) {
    (void)engine.estimate_all(0.05 * (k + 1));
  }
  churn.join();
  stop.store(true, std::memory_order_release);
  p1.join();
  p2.join();
  EXPECT_EQ(engine.session_count(), 4u);

  // Conservation: after a final drain, every enqueued sample was either
  // applied or displaced by the overload policy — none lost, none
  // duplicated.
  while (engine.drain() > 0) {
  }
  const obs::IngestStats& is = sink.ingest;
  EXPECT_EQ(is.csi_enqueued.value(),
            is.drained_csi.value() + is.csi_dropped_oldest.value());
  EXPECT_EQ(is.imu_enqueued.value(),
            is.drained_imu.value() + is.imu_dropped_oldest.value());
}

}  // namespace
}  // namespace vihot::engine
