// ProfileStore tests: content-hash interning (dedup to one allocation),
// collision-guard equality, weak-entry eviction (the store never extends
// a profile's lifetime), COW snapshot semantics, and the obs counters.
#include "engine/profile_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "engine/tracker_engine.h"
#include "obs/sink.h"
#include "tests/core/test_helpers.h"

namespace vihot::engine {
namespace {

using core::testing::synthetic_profile;

TEST(ProfileStoreTest, ContentHashIsAFunctionOfContentOnly) {
  const core::CsiProfile a = synthetic_profile(3);
  const core::CsiProfile b = synthetic_profile(3);  // rebuilt, same bytes
  core::CsiProfile c = synthetic_profile(3);
  c.positions[1].fingerprint_phase += 1e-12;  // any bit flip must show
  EXPECT_EQ(ProfileStore::content_hash(a), ProfileStore::content_hash(b));
  EXPECT_NE(ProfileStore::content_hash(a), ProfileStore::content_hash(c));
  EXPECT_TRUE(profiles_equal(a, b));
  EXPECT_FALSE(profiles_equal(a, c));
}

TEST(ProfileStoreTest, IdenticalProfilesInternToOneAllocation) {
  obs::Sink sink;
  ProfileStore store(&sink.profile_store);
  const auto first = store.intern(synthetic_profile(4));
  const auto second = store.intern(synthetic_profile(4));
  EXPECT_EQ(first.get(), second.get());  // THE dedup guarantee
  EXPECT_EQ(store.live_count(), 1u);
  EXPECT_EQ(sink.profile_store.interned.value(), 1u);
  EXPECT_EQ(sink.profile_store.dedup_hits.value(), 1u);

  const auto other = store.intern(synthetic_profile(5));
  EXPECT_NE(other.get(), first.get());
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(sink.profile_store.interned.value(), 2u);
}

TEST(ProfileStoreTest, UnreferencedProfilesAreReleasedAndSwept) {
  obs::Sink sink;
  ProfileStore store(&sink.profile_store);
  std::weak_ptr<const core::CsiProfile> watch;
  {
    const auto p = store.intern(synthetic_profile(3));
    watch = p;
    EXPECT_EQ(store.live_count(), 1u);
  }
  // The store held only a weak entry: the profile died with its last
  // external reference — the store must NOT have kept it alive.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(store.live_count(), 0u);
  EXPECT_EQ(store.index_size(), 1u);  // dead entry awaiting a sweep
  EXPECT_EQ(store.evict_expired(), 1u);
  EXPECT_EQ(store.index_size(), 0u);
  EXPECT_EQ(sink.profile_store.evicted.value(), 1u);

  // Re-interning after death allocates afresh (no stale-entry hit).
  const auto again = store.intern(synthetic_profile(3));
  EXPECT_EQ(store.live_count(), 1u);
  EXPECT_EQ(sink.profile_store.interned.value(), 2u);
  EXPECT_EQ(sink.profile_store.dedup_hits.value(), 0u);
}

TEST(ProfileStoreTest, InternSweepsExpiredEntriesOpportunistically) {
  ProfileStore store;
  { (void)store.intern(synthetic_profile(3)); }  // dies immediately
  // Same hash bucket: the next intern of identical content sweeps the
  // corpse instead of leaking index entries.
  const auto live = store.intern(synthetic_profile(3));
  EXPECT_EQ(store.index_size(), 1u);
  EXPECT_EQ(store.live_count(), 1u);
}

TEST(ProfileStoreTest, CowClonesWithoutTouchingTheBase) {
  ProfileStore store;
  const auto base = store.intern(synthetic_profile(3));
  const double base_fp = base->positions[0].fingerprint_phase;
  const auto next = store.cow(*base, [](core::CsiProfile& p) {
    p.positions[0].fingerprint_phase += 0.5;  // recalibration
  });
  EXPECT_NE(next.get(), base.get());
  EXPECT_DOUBLE_EQ(base->positions[0].fingerprint_phase, base_fp);
  EXPECT_DOUBLE_EQ(next->positions[0].fingerprint_phase, base_fp + 0.5);
  // A no-op mutation dedupes straight back onto the base snapshot.
  const auto same = store.cow(*base, [](core::CsiProfile&) {});
  EXPECT_EQ(same.get(), base.get());
}

TEST(ProfileStoreTest, ConcurrentInternsDedupeToOneAllocation) {
  ProfileStore store;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::CsiProfile>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { results[i] = store.intern(synthetic_profile(4)); });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i].get(), results[0].get());
  }
  EXPECT_EQ(store.live_count(), 1u);
}

TEST(ProfileStoreTest, EngineAddProfileDedupesAndDoesNotPin) {
  // The engine-facing contract: add_profile of identical content yields
  // one allocation (counted via the sink), and the engine keeps no
  // strong reference of its own — destroy the sessions and drop the
  // caller's pointer, and the profile memory is released.
  obs::Sink sink;
  TrackerEngine::Config cfg;
  cfg.sink = &sink;
  TrackerEngine engine(cfg);
  std::weak_ptr<const core::CsiProfile> watch;
  {
    const auto a = engine.add_profile(synthetic_profile(3));
    const auto b = engine.add_profile(synthetic_profile(3));
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(sink.profile_store.dedup_hits.value(), 1u);
    watch = a;
    const SessionId id = engine.create_session(a);
    EXPECT_TRUE(engine.destroy_session(id));
  }
  EXPECT_TRUE(watch.expired());  // nothing pins the profile anymore
}

TEST(ProfileStoreTest, EnginesShareAStoreAcrossInstances) {
  ProfileStore store;
  TrackerEngine::Config cfg;
  cfg.profiles = &store;
  TrackerEngine a(cfg);
  TrackerEngine b(cfg);
  const auto pa = a.add_profile(synthetic_profile(3));
  const auto pb = b.add_profile(synthetic_profile(3));
  EXPECT_EQ(pa.get(), pb.get());  // cross-engine dedup
  EXPECT_EQ(&a.profile_store(), &store);
  EXPECT_EQ(&b.profile_store(), &store);
}

}  // namespace
}  // namespace vihot::engine
