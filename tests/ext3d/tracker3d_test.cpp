#include "ext3d/tracker3d.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/metrics.h"
#include "util/angle.h"

namespace vihot::ext3d {
namespace {

CockpitChannel make_channel(std::uint64_t seed = 5) {
  return CockpitChannel(CockpitScene{}, channel::SubcarrierGrid{},
                        HeadScatter3d{}, util::Rng(seed));
}

TEST(SerpentineScanTest, CoversTheRectangle) {
  SerpentineScan::Config cfg;
  const SerpentineScan scan(cfg);
  double yaw_lo = 1e9;
  double yaw_hi = -1e9;
  double pitch_lo = 1e9;
  double pitch_hi = -1e9;
  for (double t = 0.0; t < scan.duration(); t += 0.01) {
    const HeadPose3d p = scan.at(t);
    yaw_lo = std::min(yaw_lo, p.yaw);
    yaw_hi = std::max(yaw_hi, p.yaw);
    pitch_lo = std::min(pitch_lo, p.pitch);
    pitch_hi = std::max(pitch_hi, p.pitch);
  }
  EXPECT_NEAR(yaw_lo, -cfg.yaw_max_rad, 0.05);
  EXPECT_NEAR(yaw_hi, cfg.yaw_max_rad, 0.05);
  EXPECT_NEAR(pitch_lo, -cfg.pitch_max_rad, 0.05);
  EXPECT_NEAR(pitch_hi, cfg.pitch_max_rad, 0.05);
}

TEST(SerpentineScanTest, YawIsContinuousAcrossRows) {
  const SerpentineScan scan(SerpentineScan::Config{});
  double prev = scan.at(0.0).yaw;
  for (double t = 0.005; t < scan.duration(); t += 0.005) {
    const double cur = scan.at(t).yaw;
    EXPECT_LT(std::abs(cur - prev), 0.05) << "t=" << t;
    prev = cur;
  }
}

TEST(CockpitChannelTest, FeaturesRespondToBothAngles) {
  CockpitChannel channel = make_channel();
  const auto f_center =
      CockpitChannel::features(channel.measure(0.0, {0.0, 0.0}));
  const auto f_yaw =
      CockpitChannel::features(channel.measure(0.01, {0.6, 0.0}));
  const auto f_pitch =
      CockpitChannel::features(channel.measure(0.02, {0.0, 0.35}));
  double d_yaw = 0.0;
  double d_pitch = 0.0;
  for (std::size_t k = 0; k < f_center.size(); ++k) {
    d_yaw += std::abs(util::angular_diff(f_yaw[k], f_center[k]));
    d_pitch += std::abs(util::angular_diff(f_pitch[k], f_center[k]));
  }
  EXPECT_GT(d_yaw, 0.1);
  EXPECT_GT(d_pitch, 0.1);
}

TEST(CockpitChannelTest, SharedCfoCancelsInFeatures) {
  // The per-frame random beta rotates every antenna identically; the
  // features (inter-antenna differences) must be reproducible.
  CockpitChannel channel = make_channel();
  const auto f1 = CockpitChannel::features(channel.measure(0.0, {0.3, 0.1}));
  const auto f2 =
      CockpitChannel::features(channel.measure(0.002, {0.3, 0.1}));
  for (std::size_t k = 0; k < f1.size(); ++k) {
    EXPECT_NEAR(util::angular_dist(f1[k], f2[k]), 0.0, 0.05) << "k=" << k;
  }
}

TEST(CockpitChannelTest, AnchoredFeaturesStayAwayFromWrap) {
  // The raw inter-antenna differences sit at arbitrary absolute levels
  // (set by many-wavelength static paths); what must hold is that, once
  // anchored to the forward-facing reference, the wobble over the whole
  // pose rectangle stays clear of the +-pi boundary.
  CockpitChannel channel = make_channel();
  std::array<double, Profile3d::kDim> ref =
      CockpitChannel::features(channel.measure(0.0, {0.0, 0.0}));
  for (double yaw = -1.3; yaw <= 1.3; yaw += 0.1) {
    for (double pitch = -0.45; pitch <= 0.45; pitch += 0.15) {
      const auto f =
          CockpitChannel::features(channel.measure(0.0, {yaw, pitch}));
      for (std::size_t d = 0; d < f.size(); ++d) {
        EXPECT_LT(std::abs(util::wrap_pi(f[d] - ref[d])), 2.9)
            << "yaw=" << yaw << " pitch=" << pitch << " d=" << d;
      }
    }
  }
}

class Tracker3dTest : public ::testing::Test {
 protected:
  static const Profile3d& profile() {
    static const Profile3d p = [] {
      CockpitChannel channel = make_channel(11);
      const SerpentineScan scan(SerpentineScan::Config{});
      return build_profile3d(channel, scan);
    }();
    return p;
  }
};

TEST_F(Tracker3dTest, ProfileShapes) {
  const Profile3d& p = profile();
  ASSERT_GT(p.rows(), 1000u);
  EXPECT_EQ(p.features.size(), p.rows() * Profile3d::kDim);
}

TEST_F(Tracker3dTest, TracksALissajousScan) {
  // Pilot scan: incommensurate yaw/pitch tones cover the pose space.
  CockpitChannel channel = make_channel(23);
  Tracker3d tracker(profile(), Tracker3d::Config{});
  const auto pose_at = [](double t) {
    HeadPose3d p;
    p.yaw = 1.0 * std::sin(0.9 * t);
    p.pitch = 0.3 * std::sin(0.53 * t + 0.4);
    return p;
  };
  sim::ErrorCollector yaw_err;
  sim::ErrorCollector pitch_err;
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {  // 10 s at 400 Hz
    t = 0.0025 * i;
    const HeadPose3d truth = pose_at(t);
    tracker.push(t, CockpitChannel::features(channel.measure(t, truth)));
    if (i % 20 == 0 && t > 0.5) {
      const Estimate3d e = tracker.estimate(t);
      if (!e.valid) continue;
      yaw_err.add(sim::angular_error_deg(e.pose.yaw, truth.yaw));
      pitch_err.add(sim::angular_error_deg(e.pose.pitch, truth.pitch));
    }
  }
  ASSERT_GT(yaw_err.size(), 50u);
  EXPECT_LT(yaw_err.median_deg(), 10.0);
  EXPECT_LT(pitch_err.median_deg(), 8.0);
}

TEST_F(Tracker3dTest, SingleFeatureCannotResolvePitch) {
  // Ablation: dims=1 mimics the 2-antenna system of the main paper —
  // yaw-only information. Pitch error must be clearly worse than with
  // the full feature vector.
  CockpitChannel channel_full = make_channel(31);
  CockpitChannel channel_one = make_channel(31);
  Tracker3d::Config one_cfg;
  one_cfg.dims = 1;
  Tracker3d full(profile(), Tracker3d::Config{});
  Tracker3d one(profile(), one_cfg);
  const auto pose_at = [](double t) {
    HeadPose3d p;
    p.yaw = 0.9 * std::sin(0.8 * t);
    p.pitch = 0.35 * std::sin(0.47 * t + 1.0);
    return p;
  };
  sim::ErrorCollector full_pitch;
  sim::ErrorCollector one_pitch;
  for (int i = 0; i < 4000; ++i) {
    const double t = 0.0025 * i;
    const HeadPose3d truth = pose_at(t);
    full.push(t, CockpitChannel::features(channel_full.measure(t, truth)));
    one.push(t, CockpitChannel::features(channel_one.measure(t, truth)));
    if (i % 20 == 0 && t > 0.5) {
      const Estimate3d ef = full.estimate(t);
      const Estimate3d eo = one.estimate(t);
      if (ef.valid) {
        full_pitch.add(sim::angular_error_deg(ef.pose.pitch, truth.pitch));
      }
      if (eo.valid) {
        one_pitch.add(sim::angular_error_deg(eo.pose.pitch, truth.pitch));
      }
    }
  }
  ASSERT_FALSE(full_pitch.empty());
  ASSERT_FALSE(one_pitch.empty());
  EXPECT_LT(full_pitch.median_deg(), one_pitch.median_deg());
}

TEST_F(Tracker3dTest, NeedsAFullWindow) {
  Tracker3d tracker(profile(), Tracker3d::Config{});
  tracker.push(0.0, {0.0, 0.0, 0.0});
  EXPECT_FALSE(tracker.estimate(0.01).valid);
}

}  // namespace
}  // namespace vihot::ext3d
