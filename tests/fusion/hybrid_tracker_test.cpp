#include "fusion/hybrid_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/core/test_helpers.h"
#include "sim/drive_sim.h"
#include "sim/metrics.h"
#include "wifi/link.h"

namespace vihot::fusion {
namespace {

// Runs one simulated drive through a HybridTracker; returns (errors,
// camera duty cycle).
std::pair<sim::ErrorCollector, double> run_drive(CameraPolicy policy,
                                                 double duration = 20.0) {
  sim::ScenarioConfig config = core::testing::fast_scenario();
  config.runtime_duration_s = duration;
  util::Rng rng(808);
  const motion::HeadPositionGrid grid(config.driver.head_center,
                                      config.num_positions,
                                      config.position_spacing_m);
  util::Rng chan_rng = rng.fork("channel");
  const channel::ChannelModel channel =
      sim::make_channel(config, 0.0, chan_rng);
  wifi::WifiLink link(channel, config.noise, config.scheduler,
                      rng.fork("link"));
  sim::DriveSession session(config, grid.position(grid.count() / 2),
                            rng.fork("drive"));
  const auto csi = link.capture(0.0, duration, [&](double t) {
    return session.cabin_state_at(t);
  });
  camera::CameraTracker cam(camera::CameraTracker::Config{},
                            rng.fork("camera"));
  const auto cam_stream = cam.capture(
      0.0, duration, [&](double t) { return session.head_at(t); });

  HybridTracker::Config cfg;
  cfg.policy = policy;
  HybridTracker tracker(core::testing::simulated_profile(), cfg);

  sim::ErrorCollector errors;
  std::size_t ci = 0;
  std::size_t mi = 0;
  for (double t = 1.5; t < duration; t += 0.05) {
    while (ci < csi.size() && csi[ci].t <= t) tracker.push_csi(csi[ci++]);
    while (mi < cam_stream.size() && cam_stream[mi].t <= t) {
      tracker.push_camera(cam_stream[mi++]);
    }
    const HybridTracker::Result r = tracker.estimate(t);
    const motion::HeadState truth = session.head_at(t);
    if (!r.valid) continue;
    if (std::abs(truth.pose.theta) < 0.035 &&
        std::abs(truth.theta_dot) < 0.17) {
      continue;
    }
    errors.add(sim::angular_error_deg(r.theta_rad, truth.pose.theta));
  }
  return {errors, tracker.camera_duty_cycle()};
}

TEST(HybridTrackerTest, OffPolicyNeverPowersCamera) {
  const auto [errors, duty] = run_drive(CameraPolicy::kOff);
  EXPECT_DOUBLE_EQ(duty, 0.0);
  EXPECT_FALSE(errors.empty());
}

TEST(HybridTrackerTest, AlwaysOnPolicyFullDuty) {
  const auto [errors, duty] = run_drive(CameraPolicy::kAlwaysOn);
  EXPECT_DOUBLE_EQ(duty, 1.0);
  EXPECT_FALSE(errors.empty());
}

TEST(HybridTrackerTest, EnergyAwareDutyBetweenExtremes) {
  const auto [errors, duty] = run_drive(CameraPolicy::kEnergyAware);
  EXPECT_GT(duty, 0.0);   // the camera wakes up sometimes
  EXPECT_LT(duty, 0.85);  // but stays off most of the drive
  EXPECT_FALSE(errors.empty());
}

TEST(HybridTrackerTest, FusionTamesTheCsiTail) {
  // The fused tail (p90) must not exceed CSI-only, and AlwaysOn must be
  // at least as good as EnergyAware at the tail.
  const auto [off_errors, d0] = run_drive(CameraPolicy::kOff);
  const auto [on_errors, d1] = run_drive(CameraPolicy::kAlwaysOn);
  EXPECT_LE(on_errors.percentile_deg(90.0),
            off_errors.percentile_deg(90.0) + 3.0);
}

TEST(HybridTrackerTest, TracksAccurately) {
  const auto [errors, duty] = run_drive(CameraPolicy::kEnergyAware);
  EXPECT_LT(errors.median_deg(), 12.0);
}

}  // namespace
}  // namespace vihot::fusion
