#include "geom/antenna_pattern.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angle.h"

namespace vihot::geom {
namespace {

TEST(DipolePatternTest, BroadsideIsUnityGain) {
  const DipolePattern p(Vec3{1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(p.gain({0.0, 1.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(p.gain({0.0, 0.0, 1.0}), 1.0);
}

TEST(DipolePatternTest, NullAlongAxisIsFloor) {
  const DipolePattern p(Vec3{1.0, 0.0, 0.0}, 0.02);
  EXPECT_DOUBLE_EQ(p.gain({1.0, 0.0, 0.0}), 0.02);
  EXPECT_DOUBLE_EQ(p.gain({-1.0, 0.0, 0.0}), 0.02);
}

TEST(DipolePatternTest, SinSquaredShape) {
  const DipolePattern p(Vec3{0.0, 0.0, 1.0}, 0.0);
  // 45 degrees off the axis: gain = sin^2(45 deg) = 0.5.
  const Vec3 dir{1.0, 0.0, 1.0};
  EXPECT_NEAR(p.gain(dir), 0.5, 1e-12);
}

TEST(DipolePatternTest, AmplitudeGainIsSqrt) {
  const DipolePattern p(Vec3{0.0, 0.0, 1.0}, 0.0);
  const Vec3 dir{1.0, 0.0, 1.0};
  EXPECT_NEAR(p.amplitude_gain(dir), std::sqrt(0.5), 1e-12);
}

TEST(DipolePatternTest, AxisIsNormalizedOnConstruction) {
  const DipolePattern p(Vec3{5.0, 0.0, 0.0});
  EXPECT_NEAR(p.axis().norm(), 1.0, 1e-12);
}

TEST(DipolePatternTest, PassengerSuppressionScenario) {
  // ViHOT placement rule (Sec. 3.5): the wire axis (+x) points at the
  // passenger; the driver sits broadside. The passenger direction must be
  // strongly attenuated relative to the driver direction.
  const DipolePattern p(Vec3{1.0, 0.0, 0.0}, 0.03);
  const Vec3 toward_driver{0.0, -0.65, 0.18};
  const Vec3 toward_passenger{0.72, -0.65, 0.15};
  EXPECT_GT(p.gain(toward_driver), 0.9);
  EXPECT_LT(p.gain(toward_passenger), 0.6);
  EXPECT_GT(p.gain(toward_driver) / p.gain(toward_passenger), 1.8);
}

TEST(DipolePatternTest, GainNeverBelowFloorNorAboveOne) {
  const DipolePattern p(Vec3{0.3, 0.8, 0.5}, 0.05);
  for (double az = 0.0; az < util::kTwoPi; az += 0.3) {
    for (double el = -1.5; el <= 1.5; el += 0.3) {
      const Vec3 dir{std::cos(el) * std::cos(az), std::cos(el) * std::sin(az),
                     std::sin(el)};
      const double g = p.gain(dir);
      EXPECT_GE(g, 0.05);
      EXPECT_LE(g, 1.0);
    }
  }
}

TEST(IsotropicPatternTest, AlwaysUnity) {
  EXPECT_DOUBLE_EQ(IsotropicPattern::gain({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(IsotropicPattern::gain({}), 1.0);
}

}  // namespace
}  // namespace vihot::geom
