#include "geom/vec3.h"

#include <gtest/gtest.h>

#include "util/angle.h"

namespace vihot::geom {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 5.0);
  EXPECT_DOUBLE_EQ(sum.y, 7.0);
  EXPECT_DOUBLE_EQ(sum.z, 9.0);
  const Vec3 diff = b - a;
  EXPECT_DOUBLE_EQ(diff.x, 3.0);
  const Vec3 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.z, 6.0);
  const Vec3 scaled2 = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled2.y, 4.0);
  const Vec3 divided = b / 2.0;
  EXPECT_DOUBLE_EQ(divided.x, 2.0);
  const Vec3 neg = -a;
  EXPECT_DOUBLE_EQ(neg.x, -1.0);
}

TEST(Vec3Test, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.dot(x), 1.0);
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  EXPECT_DOUBLE_EQ(z.y, 0.0);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
}

TEST(Vec3Test, NormAndNormalized) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  const Vec3 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(u.x, 0.6);
  // Zero vector normalizes to itself.
  const Vec3 zero{};
  EXPECT_DOUBLE_EQ(zero.normalized().norm(), 0.0);
}

TEST(Vec3Test, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {0, 3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(Vec3Test, AngleBetween) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 2.0, 0.0};
  EXPECT_NEAR(angle_between(x, y), util::kPi / 2.0, 1e-12);
  EXPECT_NEAR(angle_between(x, x), 0.0, 1e-7);
  EXPECT_NEAR(angle_between(x, -x), util::kPi, 1e-7);
  EXPECT_DOUBLE_EQ(angle_between(x, {}), 0.0);  // zero vector convention
}

TEST(Vec3Test, PlusEquals) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{0.5, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(v.x, 1.5);
  EXPECT_DOUBLE_EQ(v.y, 0.0);
  EXPECT_DOUBLE_EQ(v.z, 3.0);
}

}  // namespace
}  // namespace vihot::geom
