#include "imu/imu.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace vihot::imu {
namespace {

TEST(PhoneImuTest, SampleReflectsYawRatePlusBias) {
  PhoneImu::Config cfg;
  cfg.gyro_noise_std = 0.0;
  cfg.gyro_bias = 0.01;
  PhoneImu imu(cfg, util::Rng(1));
  motion::CarState car;
  car.yaw_rate_rad_s = 0.3;
  const ImuSample s = imu.sample(1.0, car);
  EXPECT_DOUBLE_EQ(s.t, 1.0);
  EXPECT_NEAR(s.gyro_yaw_rad_s, 0.31, 1e-12);
}

TEST(PhoneImuTest, NoiseStatistics) {
  PhoneImu::Config cfg;
  cfg.gyro_noise_std = 0.006;
  cfg.gyro_bias = 0.0;
  PhoneImu imu(cfg, util::Rng(2));
  motion::CarState car;  // yaw 0
  std::vector<double> readings;
  for (int i = 0; i < 5000; ++i) {
    readings.push_back(imu.sample(0.01 * i, car).gyro_yaw_rad_s);
  }
  EXPECT_NEAR(util::mean(readings), 0.0, 0.001);
  EXPECT_NEAR(util::stddev(readings), 0.006, 0.001);
}

TEST(PhoneImuTest, LateralAccelIsCentripetal) {
  PhoneImu::Config cfg;
  cfg.accel_noise_std = 0.0;
  PhoneImu imu(cfg, util::Rng(3));
  motion::CarState car;
  car.speed_mps = 6.0;
  car.yaw_rate_rad_s = 0.25;
  EXPECT_NEAR(imu.sample(0.0, car).accel_lateral_mps2, 1.5, 1e-9);
}

TEST(PhoneImuTest, CaptureRateAndDuration) {
  PhoneImu imu(PhoneImu::Config{}, util::Rng(4));
  motion::SteeringModel::Config scfg;
  scfg.enable_turn_events = false;
  const motion::SteeringModel steering(scfg, util::Rng(5));
  const motion::CarDynamics car;
  const auto trace = imu.capture(0.0, 10.0, car, steering);
  EXPECT_NEAR(static_cast<double>(trace.size()), 1000.0, 2.0);
  EXPECT_LT(trace.back().t, 10.0);
}

TEST(PhoneImuTest, CaptureSeesSteeringEvents) {
  motion::SteeringModel::Config scfg;
  scfg.duration_s = 60.0;
  scfg.mean_turn_interval_s = 10.0;
  const motion::SteeringModel steering(scfg, util::Rng(6));
  ASSERT_FALSE(steering.events().empty());
  const motion::CarDynamics car;
  PhoneImu::Config icfg;
  icfg.gyro_noise_std = 0.0;
  icfg.gyro_bias = 0.0;
  PhoneImu imu(icfg, util::Rng(7));
  const auto trace = imu.capture(0.0, 60.0, car, steering);
  double peak = 0.0;
  for (const ImuSample& s : trace) {
    peak = std::max(peak, std::abs(s.gyro_yaw_rad_s));
  }
  // An intersection turn at ~6 m/s yields >0.1 rad/s of body yaw.
  EXPECT_GT(peak, 0.1);
}

}  // namespace
}  // namespace vihot::imu
