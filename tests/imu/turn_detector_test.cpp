#include "imu/turn_detector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vihot::imu {
namespace {

ImuSample sample(double t, double yaw) {
  ImuSample s;
  s.t = t;
  s.gyro_yaw_rad_s = yaw;
  return s;
}

TEST(TurnDetectorTest, QuietGyroNeverTrips) {
  TurnDetector det;
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    det.update(sample(0.01 * i, 0.002 + rng.normal(0.0, 0.006)));
    EXPECT_FALSE(det.is_turning()) << "at sample " << i;
  }
}

TEST(TurnDetectorTest, RealTurnTripsQuickly) {
  TurnDetector det;
  double t = 0.0;
  // Warm up with silence.
  for (; t < 1.0; t += 0.01) det.update(sample(t, 0.0));
  // Then a 0.25 rad/s body yaw (intersection turn).
  double detect_time = -1.0;
  for (; t < 3.0; t += 0.01) {
    if (det.update(sample(t, 0.25)) && detect_time < 0.0) detect_time = t;
  }
  ASSERT_GT(detect_time, 0.0);
  EXPECT_LT(detect_time - 1.0, 0.3);  // within 300 ms of turn onset
}

TEST(TurnDetectorTest, ReleasesAfterTurnWithHold) {
  TurnDetector::Config cfg;
  cfg.hold_after_s = 0.4;
  TurnDetector det(cfg);
  double t = 0.0;
  for (; t < 1.0; t += 0.01) det.update(sample(t, 0.3));
  EXPECT_TRUE(det.is_turning());
  // Back to straight driving.
  double release_time = -1.0;
  for (; t < 4.0; t += 0.01) {
    if (!det.update(sample(t, 0.0)) && release_time < 0.0) release_time = t;
  }
  ASSERT_GT(release_time, 0.0);
  // Released, but only after the hold interval.
  EXPECT_GT(release_time - 1.0, cfg.hold_after_s * 0.9);
  EXPECT_LT(release_time - 1.0, 1.5);
  EXPECT_FALSE(det.is_turning());
}

TEST(TurnDetectorTest, HysteresisPreventsChatter) {
  TurnDetector::Config cfg;
  cfg.yaw_rate_threshold = 0.05;
  cfg.release_ratio = 0.6;
  cfg.hold_after_s = 0.0;
  TurnDetector det(cfg);
  double t = 0.0;
  for (; t < 1.0; t += 0.01) det.update(sample(t, 0.06));  // above
  EXPECT_TRUE(det.is_turning());
  // Drop into the hysteresis band (between release and trip levels).
  int flips = 0;
  bool prev = true;
  for (; t < 2.0; t += 0.01) {
    const bool cur = det.update(sample(t, 0.04));
    if (cur != prev) ++flips;
    prev = cur;
  }
  EXPECT_TRUE(det.is_turning());  // 0.04 > 0.05*0.6 = 0.03: stays latched
  EXPECT_EQ(flips, 0);
}

TEST(TurnDetectorTest, SmoothingSuppressesSpikes) {
  TurnDetector det;
  double t = 0.0;
  for (; t < 1.0; t += 0.01) det.update(sample(t, 0.0));
  // One wild 1-sample spike (sensor glitch) must not trip the detector.
  det.update(sample(t, 2.0));
  t += 0.01;
  EXPECT_FALSE(det.update(sample(t, 0.0)));
}

TEST(TurnDetectorTest, NegativeYawDetectedToo) {
  TurnDetector det;
  double t = 0.0;
  for (; t < 0.5; t += 0.01) det.update(sample(t, 0.0));
  for (; t < 1.5; t += 0.01) det.update(sample(t, -0.3));
  EXPECT_TRUE(det.is_turning());
}

}  // namespace
}  // namespace vihot::imu
