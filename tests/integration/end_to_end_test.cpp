// End-to-end integration tests: the whole pipeline — channel synthesis,
// hardware noise, CSMA timing, profiling, and run-time tracking — driven
// through the public API, asserting the paper's qualitative results.

#include <gtest/gtest.h>

#include "baseline/naive_mapper.h"
#include "sim/experiment.h"
#include "util/angle.h"

namespace vihot {
namespace {

sim::ScenarioConfig base_config(std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.seed = seed;
  c.runtime_sessions = 2;
  c.runtime_duration_s = 25.0;
  return c;
}

TEST(EndToEnd, HeadlineAccuracy) {
  // Median angular error in (or near) the paper's 4-10 deg band.
  sim::ExperimentRunner runner(base_config(101));
  const sim::ExperimentResult res = runner.run();
  ASSERT_GT(res.errors.size(), 80u);
  EXPECT_LT(res.errors.median_deg(), 12.0);
  EXPECT_GT(res.errors.median_deg(), 0.1);  // not trivially zero
}

TEST(EndToEnd, SamplingRateBeatsCameraTenfold) {
  // Sec. 2.2 / Sec. 5: CSI sampling ~500 Hz vs ~30 FPS cameras.
  sim::ExperimentRunner runner(base_config(102));
  const sim::ExperimentResult res = runner.run();
  EXPECT_GT(res.mean_csi_rate_hz, 10.0 * 30.0);
}

TEST(EndToEnd, ViHotBeatsNaiveMapping) {
  // The series matcher must clearly beat the Eq.-(5) single-point lookup.
  sim::ScenarioConfig cfg = base_config(103);
  cfg.collect_naive_baseline = true;
  sim::ExperimentRunner runner(cfg);
  const sim::ExperimentResult res = runner.run();
  ASSERT_FALSE(res.naive_errors.empty());
  // The naive lookup's median can look deceptively fine (the curve is
  // locally injective around many orientations); its failure mode is the
  // tail, where the wrong preimage is picked. Compare tail and mean.
  EXPECT_LT(res.errors.percentile_deg(90.0),
            res.naive_errors.percentile_deg(90.0));
  EXPECT_LT(res.errors.mean_deg(), res.naive_errors.mean_deg());
}

TEST(EndToEnd, SteeringIdentifierImprovesAccuracy) {
  // Fig. 17b: with steering events, disabling the identifier hurts.
  sim::ScenarioConfig with = base_config(104);
  with.steering_events = true;
  with.steering.mean_turn_interval_s = 8.0;
  sim::ScenarioConfig without = with;
  without.tracker.steering.enabled = false;
  const sim::ExperimentResult res_with =
      sim::ExperimentRunner(with).run();
  const sim::ExperimentResult res_without =
      sim::ExperimentRunner(without).run();
  ASSERT_FALSE(res_with.errors.empty());
  ASSERT_FALSE(res_without.errors.empty());
  // The identifier must reduce the error tail (p90) under heavy steering.
  EXPECT_LT(res_with.errors.percentile_deg(90.0),
            res_without.errors.percentile_deg(90.0) + 5.0);
  // And the fallback actually engages sometimes.
  EXPECT_GT(res_with.mean_fallback_fraction, 0.0);
}

TEST(EndToEnd, PredictionDegradesGracefullyWithHorizon) {
  // Fig. 10a: error grows with the horizon but stays bounded.
  sim::ScenarioConfig h0 = base_config(105);
  sim::ScenarioConfig h400 = base_config(105);
  h400.prediction_horizon_s = 0.4;
  const sim::ExperimentResult r0 = sim::ExperimentRunner(h0).run();
  const sim::ExperimentResult r400 = sim::ExperimentRunner(h400).run();
  ASSERT_FALSE(r0.errors.empty());
  ASSERT_FALSE(r400.errors.empty());
  EXPECT_LT(r0.errors.median_deg(), r400.errors.median_deg());
}

TEST(EndToEnd, BestLayoutBeatsWorstLayout) {
  // Fig. 12: Layout 1 clearly better than the co-located Layout 5.
  sim::ScenarioConfig best = base_config(106);
  best.layout = channel::AntennaLayout::kHeadrestSplit;
  sim::ScenarioConfig worst = base_config(106);
  worst.layout = channel::AntennaLayout::kPassengerSide;
  const sim::ExperimentResult rb = sim::ExperimentRunner(best).run();
  const sim::ExperimentResult rw = sim::ExperimentRunner(worst).run();
  ASSERT_FALSE(rb.errors.empty());
  ASSERT_FALSE(rw.errors.empty());
  EXPECT_LT(rb.errors.median_deg(), rw.errors.median_deg());
}

TEST(EndToEnd, PassengerCausesOnlyMildDegradation) {
  // Fig. 17c: medians with and without a passenger stay close.
  sim::ScenarioConfig without = base_config(107);
  sim::ScenarioConfig with = base_config(107);
  with.passenger_present = true;
  const sim::ExperimentResult r0 = sim::ExperimentRunner(without).run();
  const sim::ExperimentResult r1 = sim::ExperimentRunner(with).run();
  ASSERT_FALSE(r1.errors.empty());
  EXPECT_LT(r1.errors.median_deg(), r0.errors.median_deg() + 6.0);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  const sim::ExperimentResult a =
      sim::ExperimentRunner(base_config(108)).run();
  const sim::ExperimentResult b =
      sim::ExperimentRunner(base_config(108)).run();
  ASSERT_EQ(a.errors.size(), b.errors.size());
  EXPECT_DOUBLE_EQ(a.errors.median_deg(), b.errors.median_deg());
  EXPECT_DOUBLE_EQ(a.errors.max_deg(), b.errors.max_deg());
}

}  // namespace
}  // namespace vihot
