// Release-mode guard tests (ctest label "release-guard").
//
// Release builds define NDEBUG, so every assert() in the codebase
// vanishes — including util::TimeSeries::push's ordering check, the only
// thing that used to stand between a stale sample and a corrupted
// buffer. This compact suite re-verifies the hardened edges in exactly
// that configuration: tools/run_checks.sh runs it against the "release"
// preset via `ctest -L release-guard`. The tests also run (and must
// pass) in every other build type.
#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dsp/resampler.h"
#include "engine/tracker_engine.h"
#include "obs/sink.h"
#include "tests/core/test_helpers.h"
#include "wifi/trace_io.h"

namespace vihot {
namespace {

wifi::CsiMeasurement guard_measurement(double t, double phi) {
  wifi::CsiMeasurement m;
  m.t = t;
  m.h[0].assign(4, std::polar(1.0, phi));
  m.h[1].assign(4, {1.0, 0.0});
  return m;
}

TEST(ReleaseGuardTest, EngineRejectsOutOfOrderFeedsWithoutAsserts) {
  // With NDEBUG the TimeSeries assert is gone: the engine-level guard is
  // the only protection, and it must reject instead of corrupting.
  obs::Sink sink;
  engine::TrackerEngine engine({0, &sink});
  const auto profile =
      engine.add_profile(core::testing::synthetic_profile(3));
  const engine::SessionId id = engine.create_session(profile);

  EXPECT_TRUE(engine.push_csi(id, guard_measurement(1.0, 0.2)));
  EXPECT_FALSE(engine.push_csi(id, guard_measurement(0.4, 0.2)));
  EXPECT_TRUE(engine.push_csi(id, guard_measurement(1.1, 0.2)));
  EXPECT_EQ(sink.engine.out_of_order_csi.value(), 1u);
  // The session still estimates normally after the rejected frame.
  (void)engine.estimate_all(1.1);
  EXPECT_EQ(sink.engine.batches.value(), 1u);
}

TEST(ReleaseGuardTest, TrackerDropsStaleCsiWithoutAsserts) {
  obs::Sink sink;
  core::TrackerConfig config;
  config.sink = &sink;
  core::ViHotTracker tracker(core::testing::synthetic_profile(3), config);
  tracker.push_csi(guard_measurement(1.0, 0.2));
  tracker.push_csi(guard_measurement(0.4, 0.2));
  EXPECT_EQ(sink.tracker.csi_out_of_order.value(), 1u);
}

TEST(ReleaseGuardTest, TraceHeaderGarbageYieldsNullopt) {
  // std::stoul would have thrown here; defensive parsing must just
  // return nullopt in every build type.
  const std::string path =
      ::testing::TempDir() + "vihot_release_guard_trace.csv";
  std::ofstream os(path);
  os << "# vihot-csi v1 antennas=2 subcarriers=bogus\n1.0,0.5,0.5\n";
  os.close();
  EXPECT_FALSE(wifi::read_csi_trace(path).has_value());
  std::remove(path.c_str());
}

TEST(ReleaseGuardTest, ResampleKeepsExactMultipleEndpoint) {
  util::TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(0.1, 1.0);
  ts.push(0.2, 2.0);
  ts.push(0.3, 3.0);
  const util::UniformSeries out = dsp::resample(ts, 10.0);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out.values.back(), 3.0, 1e-9);
}

TEST(ReleaseGuardTest, MetricsSnapshotSurvivesConcurrentWriters) {
  // The registry snapshot path must stay safe with live writers — the
  // production telemetry pattern (writer threads + a scraper).
  obs::Sink sink;
  obs::Registry registry;
  sink.attach_to(registry);
  for (int i = 0; i < 1000; ++i) {
    sink.tracker.estimates.inc();
    sink.engine.batch_latency_us.observe(static_cast<double>(i));
  }
  std::ostringstream json;
  registry.write_json(json);
  EXPECT_NE(json.str().find("\"tracker.estimates\": 1000"),
            std::string::npos);
}

}  // namespace
}  // namespace vihot
