// Parameterized pipeline sweeps: every antenna layout, driver, and
// interference combination must run the full profile-then-track pipeline
// to completion with sane outputs. These are invariants, not accuracy
// targets (accuracy per configuration is the benches' job):
//   * the profile always builds with all positions,
//   * sessions always produce evaluated estimates,
//   * the CSI link stays in its physical regime,
//   * errors are finite angles.

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace vihot {
namespace {

sim::ScenarioConfig sweep_config() {
  sim::ScenarioConfig c;
  c.seed = 4242;
  c.runtime_sessions = 1;
  c.runtime_duration_s = 15.0;
  c.profiling_sweep_s = 8.0;
  return c;
}

void check_invariants(const sim::ExperimentResult& res,
                      const sim::ScenarioConfig& config) {
  EXPECT_EQ(res.profile.size(), config.num_positions);
  ASSERT_FALSE(res.sessions.empty());
  for (const sim::SessionResult& s : res.sessions) {
    EXPECT_GT(s.estimates, 100u);
    EXPECT_GT(s.evaluated, 0u);
    EXPECT_GT(s.csi_rate_hz, 300.0);
    EXPECT_LT(s.csi_rate_hz, 600.0);
    EXPECT_LT(s.max_gap_s, 0.06);
  }
  for (const double e : res.errors.samples()) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 180.0);
  }
}

class LayoutSweep
    : public ::testing::TestWithParam<channel::AntennaLayout> {};

TEST_P(LayoutSweep, PipelineCompletes) {
  sim::ScenarioConfig config = sweep_config();
  config.layout = GetParam();
  const sim::ExperimentResult res = sim::ExperimentRunner(config).run();
  check_invariants(res, config);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, LayoutSweep,
    ::testing::Values(channel::AntennaLayout::kHeadrestSplit,
                      channel::AntennaLayout::kCenterConsole,
                      channel::AntennaLayout::kRearDeck,
                      channel::AntennaLayout::kDashPair,
                      channel::AntennaLayout::kPassengerSide));

class DriverSweep : public ::testing::TestWithParam<int> {};

TEST_P(DriverSweep, PipelineCompletes) {
  sim::ScenarioConfig config = sweep_config();
  config.driver = motion::all_drivers()[static_cast<std::size_t>(
      GetParam())];
  const sim::ExperimentResult res = sim::ExperimentRunner(config).run();
  check_invariants(res, config);
  // Per-driver profiles must actually differ (personal calibration).
  EXPECT_GT(res.errors.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(AllDrivers, DriverSweep, ::testing::Range(0, 3));

struct InterferenceCase {
  bool passenger;
  bool steering;
  bool vibration;
  bool busy_channel;
  bool music;
};

class InterferenceSweep
    : public ::testing::TestWithParam<InterferenceCase> {};

TEST_P(InterferenceSweep, PipelineCompletes) {
  const InterferenceCase& c = GetParam();
  sim::ScenarioConfig config = sweep_config();
  config.passenger_present = c.passenger;
  config.steering_events = c.steering;
  config.antenna_vibration = c.vibration;
  config.music_playing = c.music;
  if (c.busy_channel) {
    config.scheduler.load = wifi::ChannelLoad::kInterfering;
  }
  const sim::ExperimentResult res = sim::ExperimentRunner(config).run();
  ASSERT_FALSE(res.sessions.empty());
  EXPECT_GT(res.sessions[0].evaluated, 0u);
  // Even the everything-at-once case must stay usable on the median.
  EXPECT_LT(res.errors.median_deg(), 45.0);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, InterferenceSweep,
    ::testing::Values(InterferenceCase{true, false, false, false, false},
                      InterferenceCase{false, true, false, false, false},
                      InterferenceCase{false, false, true, false, false},
                      InterferenceCase{false, false, false, true, false},
                      InterferenceCase{false, false, false, false, true},
                      InterferenceCase{true, true, true, true, true}));

}  // namespace
}  // namespace vihot
