#include "motion/car.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vihot::motion {
namespace {

TEST(CarTest, StraightWheelNoYaw) {
  const CarDynamics car;
  EXPECT_DOUBLE_EQ(car.steady_yaw_rate(0.0), 0.0);
}

TEST(CarTest, YawSignFollowsWheel) {
  const CarDynamics car;
  EXPECT_GT(car.steady_yaw_rate(1.0), 0.0);
  EXPECT_LT(car.steady_yaw_rate(-1.0), 0.0);
}

TEST(CarTest, BicycleModelMagnitude) {
  CarDynamics::Config cfg;
  cfg.speed_mps = 6.0;
  cfg.wheelbase_m = 2.78;
  cfg.steering_ratio = 14.5;
  const CarDynamics car(cfg);
  // 90 deg of wheel -> ~6.2 deg road wheels -> v/L*tan(...) ~ 0.235 rad/s.
  const double yaw = car.steady_yaw_rate(1.5708);
  EXPECT_NEAR(yaw, 6.0 / 2.78 * std::tan(1.5708 / 14.5), 1e-9);
  EXPECT_GT(yaw, 0.2);
  EXPECT_LT(yaw, 0.3);
}

TEST(CarTest, MicroCorrectionsBarelyTurnTheCar) {
  const CarDynamics car;
  // 2 deg of wheel jiggle: yaw far below the turn-detector threshold.
  EXPECT_LT(std::abs(car.steady_yaw_rate(0.035)), 0.01);
}

TEST(CarTest, AtAppliesLag) {
  SteeringModel::Config scfg;
  scfg.duration_s = 30.0;
  scfg.mean_turn_interval_s = 8.0;
  scfg.micro_amplitude_rad = 0.0;  // isolate the event
  const SteeringModel steering(scfg, util::Rng(1));
  ASSERT_FALSE(steering.events().empty());
  const auto& ev = steering.events().front();

  CarDynamics::Config ccfg;
  ccfg.yaw_lag_s = 0.25;
  const CarDynamics car(ccfg);
  // At the moment the wheel reaches its peak, the car yaw still reflects
  // the (smaller) wheel angle from yaw_lag_s earlier.
  const double t_peak = ev.start + ev.ramp_s;
  const double yaw_now = car.at(t_peak, steering).yaw_rate_rad_s;
  const double yaw_unlagged = car.steady_yaw_rate(
      steering.at(t_peak).wheel_angle_rad);
  EXPECT_LT(std::abs(yaw_now), std::abs(yaw_unlagged) + 1e-12);
}

TEST(CarTest, SpeedPropagatesToState) {
  CarDynamics::Config cfg;
  cfg.speed_mps = 4.2;
  const CarDynamics car(cfg);
  SteeringModel::Config scfg;
  scfg.enable_turn_events = false;
  const SteeringModel steering(scfg, util::Rng(2));
  EXPECT_DOUBLE_EQ(car.at(1.0, steering).speed_mps, 4.2);
}

}  // namespace
}  // namespace vihot::motion
