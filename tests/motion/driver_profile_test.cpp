#include "motion/driver_profile.h"

#include <gtest/gtest.h>

#include "util/angle.h"

namespace vihot::motion {
namespace {

TEST(DriverProfileTest, ThreeDistinctDrivers) {
  const auto drivers = all_drivers();
  ASSERT_EQ(drivers.size(), 3u);
  EXPECT_NE(drivers[0].name, drivers[1].name);
  EXPECT_NE(drivers[1].name, drivers[2].name);
}

TEST(DriverProfileTest, HeightsMatchThePaper) {
  // Sec. 5.2.5: heights 170-182 cm.
  for (const DriverProfile& d : all_drivers()) {
    EXPECT_GE(d.height_cm, 170.0);
    EXPECT_LE(d.height_cm, 182.0);
  }
}

TEST(DriverProfileTest, TallerDriverSitsHigher) {
  const DriverProfile b = driver_b();  // tallest
  const DriverProfile c = driver_c();  // shortest
  EXPECT_GT(b.height_cm, c.height_cm);
  EXPECT_GT(b.head_center.z, c.head_center.z);
}

TEST(DriverProfileTest, TurnSpeedsInTypicalDrivingRange) {
  // Sec. 5.1: normal head-turning speed 100-120 deg/s; driver B is brisk.
  for (const DriverProfile& d : all_drivers()) {
    EXPECT_GE(d.turn_speed_rad_s, util::deg_to_rad(95.0));
    EXPECT_LE(d.turn_speed_rad_s, util::deg_to_rad(135.0));
  }
}

TEST(DriverProfileTest, ScatterModelsDifferPerDriver) {
  const auto drivers = all_drivers();
  EXPECT_NE(drivers[0].scatter.primary_offset_m,
            drivers[1].scatter.primary_offset_m);
  EXPECT_NE(drivers[1].scatter.secondary_phase_rad,
            drivers[2].scatter.secondary_phase_rad);
}

TEST(DriverProfileTest, HeadCentersOnDriverSide) {
  for (const DriverProfile& d : all_drivers()) {
    EXPECT_LT(d.head_center.x, 0.0);
    EXPECT_GT(d.head_center.z, 1.0);  // seated head height
    EXPECT_LT(d.head_center.z, 1.4);
  }
}

}  // namespace
}  // namespace vihot::motion
