#include "motion/head_trajectory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angle.h"

namespace vihot::motion {
namespace {

TEST(HeadPositionGridTest, CountAndSpacing) {
  const geom::Vec3 center{-0.36, 0.10, 1.18};
  const HeadPositionGrid grid(center, 10, 0.012);
  EXPECT_EQ(grid.count(), 10u);
  // Adjacent positions are exactly one spacing apart.
  for (std::size_t i = 1; i < grid.count(); ++i) {
    EXPECT_NEAR(geom::distance(grid.position(i), grid.position(i - 1)),
                0.012, 1e-12);
  }
  // The grid is centered on the natural position.
  const geom::Vec3 mid =
      (grid.position(4) + grid.position(5)) / 2.0;
  EXPECT_NEAR(geom::distance(mid, center), 0.0, 1e-9);
}

TEST(HeadPositionGridTest, LeanIsDominantlyLongitudinal) {
  const HeadPositionGrid grid({0, 0, 0}, 10, 0.012);
  const geom::Vec3 dir =
      (grid.position(9) - grid.position(0)).normalized();
  EXPECT_GT(std::abs(dir.y), 0.8);  // forward/backward dominates
}

TEST(HeadPositionGridTest, NearestRoundTrips) {
  const HeadPositionGrid grid({-0.36, 0.10, 1.18}, 10, 0.012);
  for (std::size_t i = 0; i < grid.count(); ++i) {
    EXPECT_EQ(grid.nearest(grid.position(i)), i);
  }
  // A point slightly off a grid slot still maps to that slot.
  const geom::Vec3 p = grid.position(3) + geom::Vec3{0.002, 0.001, 0.0};
  EXPECT_EQ(grid.nearest(p), 3u);
}

TEST(SweepTrajectoryTest, CoversFullRange) {
  SweepTrajectory::Config cfg;
  cfg.theta_min_rad = -1.5;
  cfg.theta_max_rad = 1.5;
  cfg.speed_rad_s = 2.0;
  const SweepTrajectory sweep(cfg, {0, 0, 0});
  double lo = 1e9;
  double hi = -1e9;
  for (double t = 0.0; t < 2.0 * sweep.period(); t += 0.01) {
    const double theta = sweep.at(t).pose.theta;
    lo = std::min(lo, theta);
    hi = std::max(hi, theta);
  }
  EXPECT_NEAR(lo, -1.5, 0.02);
  EXPECT_NEAR(hi, 1.5, 0.02);
}

TEST(SweepTrajectoryTest, PeriodMatchesSpeed) {
  SweepTrajectory::Config cfg;
  cfg.theta_min_rad = -1.0;
  cfg.theta_max_rad = 1.0;
  cfg.speed_rad_s = 2.0;
  const SweepTrajectory sweep(cfg, {0, 0, 0});
  // One period = out and back: 2 * span / speed = 2 s.
  EXPECT_NEAR(sweep.period(), 2.0, 1e-9);
  // Periodicity.
  EXPECT_NEAR(sweep.at(0.3).pose.theta,
              sweep.at(0.3 + sweep.period()).pose.theta, 1e-9);
}

TEST(SweepTrajectoryTest, ContinuousPositionAndVelocity) {
  SweepTrajectory::Config cfg;
  const SweepTrajectory sweep(cfg, {0, 0, 0});
  double prev_theta = sweep.at(0.0).pose.theta;
  for (double t = 0.001; t < 1.5 * sweep.period(); t += 0.001) {
    const HeadState s = sweep.at(t);
    // No jumps.
    EXPECT_LT(std::abs(s.pose.theta - prev_theta), 0.02);
    prev_theta = s.pose.theta;
    // |velocity| never exceeds ~1.3x the nominal (eased triangular).
    EXPECT_LE(std::abs(s.theta_dot), cfg.speed_rad_s * 1.35);
  }
}

TEST(SweepTrajectoryTest, VelocityMatchesFiniteDifference) {
  const SweepTrajectory sweep(SweepTrajectory::Config{}, {0, 0, 0});
  for (double t = 0.1; t < 3.0; t += 0.17) {
    const double fd =
        (sweep.at(t + 5e-4).pose.theta - sweep.at(t - 5e-4).pose.theta) /
        1e-3;
    EXPECT_NEAR(sweep.at(t).theta_dot, fd, 0.05) << "t=" << t;
  }
}

TEST(DrivingScanTest, MostlyFacingForward) {
  DrivingScanTrajectory::Config cfg;
  cfg.duration_s = 60.0;
  const DrivingScanTrajectory traj(cfg, {0, 0, 0}, util::Rng(1));
  int forward = 0;
  int total = 0;
  for (double t = 0.0; t < 60.0; t += 0.05) {
    if (std::abs(traj.at(t).pose.theta) < util::deg_to_rad(5.0)) ++forward;
    ++total;
  }
  // Drivers look at the road most of the time (Sec. 3.4.1).
  EXPECT_GT(static_cast<double>(forward) / total, 0.5);
}

TEST(DrivingScanTest, EventsReachTheirTargets) {
  DrivingScanTrajectory::Config cfg;
  cfg.duration_s = 40.0;
  const DrivingScanTrajectory traj(cfg, {0, 0, 0}, util::Rng(2));
  ASSERT_FALSE(traj.events().empty());
  for (const auto& ev : traj.events()) {
    const double t_peak = ev.start + ev.turn_duration() + ev.hold_s / 2.0;
    if (t_peak >= cfg.duration_s) continue;
    EXPECT_NEAR(traj.at(t_peak).pose.theta, ev.target_rad, 0.02);
  }
}

TEST(DrivingScanTest, EventsDoNotOverlap) {
  DrivingScanTrajectory::Config cfg;
  cfg.duration_s = 120.0;
  const DrivingScanTrajectory traj(cfg, {0, 0, 0}, util::Rng(3));
  for (std::size_t i = 1; i < traj.events().size(); ++i) {
    EXPECT_GE(traj.events()[i].start, traj.events()[i - 1].end());
  }
}

TEST(DrivingScanTest, ScanAmplitudesWithinConfiguredBand) {
  DrivingScanTrajectory::Config cfg;
  cfg.duration_s = 200.0;
  cfg.min_target_rad = 0.6;
  cfg.max_target_rad = 1.4;
  const DrivingScanTrajectory traj(cfg, {0, 0, 0}, util::Rng(4));
  for (const auto& ev : traj.events()) {
    EXPECT_GE(std::abs(ev.target_rad), 0.6);
    EXPECT_LE(std::abs(ev.target_rad), 1.4);
  }
}

TEST(DrivingScanTest, DeterministicForSeed) {
  DrivingScanTrajectory::Config cfg;
  const DrivingScanTrajectory a(cfg, {0, 0, 0}, util::Rng(5));
  const DrivingScanTrajectory b(cfg, {0, 0, 0}, util::Rng(5));
  for (double t = 0.0; t < 20.0; t += 0.37) {
    EXPECT_DOUBLE_EQ(a.at(t).pose.theta, b.at(t).pose.theta);
  }
}

TEST(Rotation3dTest, YawDominatesPitchRoll) {
  // Fig. 2: the head scan is essentially horizontal.
  for (double t = 0.0; t < 16.0; t += 0.1) {
    const double yaw = 1.4 * std::sin(0.8 * t);
    const HeadRotation3d r = rotation_3d(yaw, t);
    EXPECT_DOUBLE_EQ(r.yaw_rad, yaw);
    EXPECT_LT(std::abs(r.pitch_rad), 0.35 * std::abs(yaw) + 0.06);
    EXPECT_LT(std::abs(r.roll_rad), 0.35 * std::abs(yaw) + 0.06);
  }
}

// Parameterized sweep speeds: the achieved mean |speed| tracks the config.
class SweepSpeedProperty : public ::testing::TestWithParam<double> {};

TEST_P(SweepSpeedProperty, MeanSpeedNearNominal) {
  SweepTrajectory::Config cfg;
  cfg.speed_rad_s = GetParam();
  const SweepTrajectory sweep(cfg, {0, 0, 0});
  double sum = 0.0;
  int n = 0;
  for (double t = 0.0; t < 3.0 * sweep.period(); t += 0.002) {
    sum += std::abs(sweep.at(t).theta_dot);
    ++n;
  }
  EXPECT_NEAR(sum / n, cfg.speed_rad_s, 0.15 * cfg.speed_rad_s);
}

INSTANTIATE_TEST_SUITE_P(Speeds, SweepSpeedProperty,
                         ::testing::Values(1.0, 1.75, 1.92, 2.2, 2.6));

}  // namespace
}  // namespace vihot::motion
