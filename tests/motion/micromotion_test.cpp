#include "motion/micromotion.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vihot::motion {
namespace {

TEST(BreathingTest, AmplitudeBounded) {
  BreathingModel::Config cfg;
  const BreathingModel model(cfg, util::Rng(1));
  for (double t = 0.0; t < 60.0; t += 0.01) {
    EXPECT_LE(std::abs(model.displacement_at(t)), 1.3 * cfg.amplitude_m);
  }
}

TEST(BreathingTest, PeriodicityNearConfiguredRate) {
  BreathingModel::Config cfg;
  cfg.rate_hz = 0.27;
  const BreathingModel model(cfg, util::Rng(2));
  // Count zero crossings over 60 s: ~2 per cycle (plus harmonic wiggles).
  int crossings = 0;
  double prev = model.displacement_at(0.0);
  for (double t = 0.01; t < 60.0; t += 0.01) {
    const double cur = model.displacement_at(t);
    if ((prev < 0.0) != (cur < 0.0)) ++crossings;
    prev = cur;
  }
  const double cycles = 60.0 * cfg.rate_hz;
  EXPECT_NEAR(crossings, 2.0 * cycles, cycles * 1.2);
}

TEST(EyeMotionTest, BlinksArePulses) {
  EyeMotionModel::Config cfg;
  cfg.duration_s = 60.0;
  const EyeMotionModel model(cfg, util::Rng(3));
  double peak = 0.0;
  int nonzero_runs = 0;
  bool in_run = false;
  for (double t = 0.0; t < 60.0; t += 0.005) {
    const double d = model.displacement_at(t);
    peak = std::max(peak, d);
    const bool active = d > 1e-9;
    if (active && !in_run) ++nonzero_runs;
    in_run = active;
  }
  EXPECT_NEAR(peak, cfg.blink_amplitude_m, 0.3 * cfg.blink_amplitude_m);
  EXPECT_GT(nonzero_runs, 5);   // several blinks per minute
  EXPECT_LT(nonzero_runs, 60);  // but not continuous
}

TEST(EyeMotionTest, IntenseModeAddsContinuousDither) {
  EyeMotionModel::Config cfg;
  cfg.duration_s = 10.0;
  cfg.intense = true;
  const EyeMotionModel model(cfg, util::Rng(4));
  int active = 0;
  int total = 0;
  for (double t = 0.0; t < 10.0; t += 0.01) {
    if (std::abs(model.displacement_at(t)) > 1e-6) ++active;
    ++total;
  }
  EXPECT_GT(static_cast<double>(active) / total, 0.9);
}

TEST(MusicTest, SilentWhenNotPlaying) {
  MusicVibrationModel::Config cfg;
  cfg.playing = false;
  const MusicVibrationModel model(cfg, util::Rng(5));
  for (double t = 0.0; t < 5.0; t += 0.01) {
    EXPECT_DOUBLE_EQ(model.displacement_at(t), 0.0);
  }
}

TEST(MusicTest, SubMillimeterWhenPlaying) {
  MusicVibrationModel::Config cfg;
  cfg.playing = true;
  const MusicVibrationModel model(cfg, util::Rng(6));
  double peak = 0.0;
  for (double t = 0.0; t < 5.0; t += 0.001) {
    peak = std::max(peak, std::abs(model.displacement_at(t)));
  }
  EXPECT_GT(peak, 0.0001);
  EXPECT_LT(peak, 0.001);  // sub-mm panel vibration
}

TEST(MusicTest, CarrierFasterThanBreathing) {
  MusicVibrationModel::Config cfg;
  cfg.playing = true;
  const MusicVibrationModel model(cfg, util::Rng(7));
  int crossings = 0;
  double prev = model.displacement_at(0.0);
  for (double t = 0.0005; t < 1.0; t += 0.0005) {
    const double cur = model.displacement_at(t);
    if ((prev < 0.0) != (cur < 0.0)) ++crossings;
    prev = cur;
  }
  EXPECT_GT(crossings, 40);  // tens of Hz, audible-rate
}

}  // namespace
}  // namespace vihot::motion
