// OccupantMotion: the scenario-pack occupant trajectory dispatcher.
//
// The determinism audit of DESIGN.md §5l: every occupant's motion is a
// deterministic function of local presence time once seeded — the same
// config + rng seed reproduces the trajectory bit-for-bit, which is what
// makes whole scenario packs (and their .vrlog recordings) replayable.
#include "motion/passenger.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace vihot::motion {
namespace {

const geom::Vec3 kSeat{0.36, 0.10, 1.15};

OccupantMotionConfig config_for(OccupantBehavior behavior) {
  OccupantMotionConfig c;
  c.behavior = behavior;
  c.duration_s = 12.0;
  return c;
}

class OccupantMotionBehaviors
    : public ::testing::TestWithParam<OccupantBehavior> {};

TEST_P(OccupantMotionBehaviors, SameSeedBitIdentical) {
  const OccupantMotionConfig cfg = config_for(GetParam());
  const OccupantMotion a(cfg, kSeat, util::Rng(777));
  const OccupantMotion b(cfg, kSeat, util::Rng(777));
  for (double u = 0.0; u < 12.0; u += 0.05) {
    const HeadState sa = a.at(u);
    const HeadState sb = b.at(u);
    EXPECT_EQ(sa.pose.theta, sb.pose.theta) << "u=" << u;
    EXPECT_EQ(sa.pose.position.x, sb.pose.position.x) << "u=" << u;
    EXPECT_EQ(sa.pose.position.y, sb.pose.position.y) << "u=" << u;
    EXPECT_EQ(sa.pose.position.z, sb.pose.position.z) << "u=" << u;
    EXPECT_EQ(sa.theta_dot, sb.theta_dot) << "u=" << u;
    EXPECT_EQ(a.moving_at(u), b.moving_at(u)) << "u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBehaviors, OccupantMotionBehaviors,
                         ::testing::Values(OccupantBehavior::kStill,
                                           OccupantBehavior::kGlances,
                                           OccupantBehavior::kScanEvents,
                                           OccupantBehavior::kContinuousSweep));

TEST(OccupantMotion, DifferentSeedsDiverge) {
  // Event-schedule behaviors must actually consume the rng: two seeds
  // give different trajectories somewhere in the window.
  for (OccupantBehavior b : {OccupantBehavior::kGlances,
                             OccupantBehavior::kScanEvents,
                             OccupantBehavior::kContinuousSweep}) {
    const OccupantMotionConfig cfg = config_for(b);
    const OccupantMotion m1(cfg, kSeat, util::Rng(1));
    const OccupantMotion m2(cfg, kSeat, util::Rng(2));
    double max_diff = 0.0;
    for (double u = 0.0; u < 12.0; u += 0.05) {
      max_diff = std::max(max_diff,
                          std::abs(m1.at(u).pose.theta - m2.at(u).pose.theta));
    }
    EXPECT_GT(max_diff, 1e-3) << "behavior " << static_cast<int>(b);
  }
}

TEST(OccupantMotion, StillStaysPut) {
  const OccupantMotion m(config_for(OccupantBehavior::kStill), kSeat,
                         util::Rng(5));
  for (double u = 0.0; u < 12.0; u += 0.5) {
    const HeadState s = m.at(u);
    EXPECT_EQ(s.pose.theta, 0.0);
    EXPECT_EQ(s.theta_dot, 0.0);
    EXPECT_EQ(s.pose.position.x, kSeat.x);
    EXPECT_EQ(s.pose.position.y, kSeat.y);
    EXPECT_EQ(s.pose.position.z, kSeat.z);
    EXPECT_FALSE(m.moving_at(u));
  }
}

TEST(OccupantMotion, ContinuousSweepNeverRests) {
  // The continuous_sweep pack's contract: no dwell the tracker could
  // re-anchor on. In EVERY half-second window the head must both rotate
  // and translate by a perceptible amount.
  const OccupantMotion m(config_for(OccupantBehavior::kContinuousSweep),
                         kSeat, util::Rng(99));
  for (double w = 0.0; w + 0.5 <= 12.0; w += 0.5) {
    double dtheta = 0.0;
    double dpos = 0.0;
    HeadState prev = m.at(w);
    for (double u = w + 0.05; u <= w + 0.5; u += 0.05) {
      const HeadState s = m.at(u);
      dtheta += std::abs(s.pose.theta - prev.pose.theta);
      dpos += geom::distance(s.pose.position, prev.pose.position);
      prev = s;
    }
    EXPECT_GT(dtheta, 1e-3) << "yaw dwell in [" << w << ", " << w + 0.5 << ")";
    EXPECT_GT(dpos, 1e-6) << "positional dwell at w=" << w;
    EXPECT_TRUE(m.moving_at(w));
  }
}

TEST(OccupantMotion, GlancesReturnToForward) {
  // Between glance events the occupant faces forward — the quiet
  // baseline the crosstalk packs' interference rides on.
  // (moving_at alone is not "at rest": it is also false while HOLDING a
  // glance at its target angle.)
  const OccupantMotion m(config_for(OccupantBehavior::kGlances), kSeat,
                         util::Rng(11));
  double quiet = 0.0;
  double glancing = 0.0;
  double samples = 0.0;
  for (double u = 0.0; u < 12.0; u += 0.02) {
    const double theta = m.at(u).pose.theta;
    if (std::abs(theta) < 1e-9) {
      quiet += 1.0;
      EXPECT_FALSE(m.moving_at(u)) << "u=" << u;
    }
    if (std::abs(theta) > 0.3) glancing += 1.0;
    samples += 1.0;
  }
  EXPECT_GT(quiet / samples, 0.2) << "glancing occupant never at rest";
  EXPECT_GT(glancing, 0.0) << "occupant never actually glanced";
}

}  // namespace
}  // namespace vihot::motion
