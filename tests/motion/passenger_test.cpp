#include "motion/passenger.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vihot::motion {
namespace {

TEST(PassengerTest, MostlyFacingForward) {
  PassengerModel::Config cfg;
  cfg.duration_s = 120.0;
  const PassengerModel model(cfg, util::Rng(1));
  int forward = 0;
  int total = 0;
  for (double t = 0.0; t < 120.0; t += 0.05) {
    if (std::abs(model.theta_at(t)) < 0.02) ++forward;
    ++total;
  }
  EXPECT_GT(static_cast<double>(forward) / total, 0.4);
}

TEST(PassengerTest, GlancesAreInfrequentAndBounded) {
  PassengerModel::Config cfg;
  cfg.duration_s = 300.0;
  cfg.mean_event_interval_s = 8.0;
  const PassengerModel model(cfg, util::Rng(2));
  double peak = 0.0;
  for (double t = 0.0; t < 300.0; t += 0.02) {
    peak = std::max(peak, std::abs(model.theta_at(t)));
  }
  EXPECT_GT(peak, 0.5);                       // glances happen
  EXPECT_LE(peak, cfg.target_rad + 1e-9);     // and stay bounded
}

TEST(PassengerTest, MovingOnlyDuringTurnPhases) {
  PassengerModel::Config cfg;
  cfg.duration_s = 120.0;
  const PassengerModel model(cfg, util::Rng(3));
  for (double t = 0.0; t < 120.0; t += 0.01) {
    if (model.moving_at(t)) {
      // While moving, theta changes nearby.
      const double d =
          std::abs(model.theta_at(t + 0.05) - model.theta_at(t - 0.05));
      EXPECT_GT(d, 0.0);
    }
  }
}

TEST(PassengerTest, ThetaIsContinuous) {
  PassengerModel::Config cfg;
  cfg.duration_s = 60.0;
  const PassengerModel model(cfg, util::Rng(4));
  double prev = model.theta_at(0.0);
  for (double t = 0.005; t < 60.0; t += 0.005) {
    const double cur = model.theta_at(t);
    EXPECT_LT(std::abs(cur - prev), 0.03);
    prev = cur;
  }
}

TEST(PassengerTest, DeterministicForSeed) {
  PassengerModel::Config cfg;
  const PassengerModel a(cfg, util::Rng(5));
  const PassengerModel b(cfg, util::Rng(5));
  for (double t = 0.0; t < 40.0; t += 0.61) {
    EXPECT_DOUBLE_EQ(a.theta_at(t), b.theta_at(t));
  }
}

}  // namespace
}  // namespace vihot::motion
