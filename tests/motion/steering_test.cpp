#include "motion/steering.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vihot::motion {
namespace {

TEST(SteeringTest, MicroCorrectionsSmallAndContinuous) {
  SteeringModel::Config cfg;
  cfg.enable_turn_events = false;
  const SteeringModel model(cfg, util::Rng(1));
  double prev = model.at(0.0).wheel_angle_rad;
  for (double t = 0.01; t < 30.0; t += 0.01) {
    const SteeringState s = model.at(t);
    EXPECT_LE(std::abs(s.wheel_angle_rad), 1.6 * cfg.micro_amplitude_rad);
    EXPECT_LT(std::abs(s.wheel_angle_rad - prev), 0.01);
    EXPECT_FALSE(s.in_turn_event);
    prev = s.wheel_angle_rad;
  }
}

TEST(SteeringTest, TurnEventsReachConfiguredAngles) {
  SteeringModel::Config cfg;
  cfg.duration_s = 120.0;
  cfg.mean_turn_interval_s = 15.0;
  const SteeringModel model(cfg, util::Rng(2));
  ASSERT_FALSE(model.events().empty());
  for (const auto& ev : model.events()) {
    EXPECT_GE(std::abs(ev.angle_rad), cfg.turn_angle_min_rad);
    EXPECT_LE(std::abs(ev.angle_rad), cfg.turn_angle_max_rad);
    // Mid-hold the wheel is at its peak (plus micro jitter).
    const double t_mid = ev.start + ev.ramp_s + ev.hold_s / 2.0;
    if (t_mid >= cfg.duration_s) continue;
    EXPECT_NEAR(model.at(t_mid).wheel_angle_rad, ev.angle_rad, 0.08);
    EXPECT_TRUE(model.at(t_mid).in_turn_event);
  }
}

TEST(SteeringTest, EventsDoNotOverlap) {
  SteeringModel::Config cfg;
  cfg.duration_s = 300.0;
  cfg.mean_turn_interval_s = 10.0;
  const SteeringModel model(cfg, util::Rng(3));
  for (std::size_t i = 1; i < model.events().size(); ++i) {
    EXPECT_GE(model.events()[i].start, model.events()[i - 1].end());
  }
}

TEST(SteeringTest, WheelRateConsistentWithAngle) {
  SteeringModel::Config cfg;
  cfg.duration_s = 60.0;
  const SteeringModel model(cfg, util::Rng(4));
  for (double t = 0.1; t < 50.0; t += 0.23) {
    const double fd = (model.at(t + 5e-4).wheel_angle_rad -
                       model.at(t - 5e-4).wheel_angle_rad) /
                      1e-3;
    EXPECT_NEAR(model.at(t).wheel_rate_rad_s, fd, 0.05) << "t=" << t;
  }
}

TEST(SteeringTest, DisabledEventsLeaveOnlyMicro) {
  SteeringModel::Config cfg;
  cfg.enable_turn_events = false;
  const SteeringModel model(cfg, util::Rng(5));
  EXPECT_TRUE(model.events().empty());
}

TEST(SteeringTest, DeterministicForSeed) {
  SteeringModel::Config cfg;
  const SteeringModel a(cfg, util::Rng(6));
  const SteeringModel b(cfg, util::Rng(6));
  for (double t = 0.0; t < 30.0; t += 0.71) {
    EXPECT_DOUBLE_EQ(a.at(t).wheel_angle_rad, b.at(t).wheel_angle_rad);
  }
}

}  // namespace
}  // namespace vihot::motion
