#include "motion/vibration.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vihot::motion {
namespace {

TEST(VibrationTest, DisabledGivesZeroOffsets) {
  VibrationModel::Config cfg;
  cfg.enabled = false;
  const VibrationModel model(cfg, util::Rng(1));
  EXPECT_FALSE(model.enabled());
  for (double t = 0.0; t < 5.0; t += 0.1) {
    EXPECT_DOUBLE_EQ(model.rx_offset_at(0, t).norm(), 0.0);
    EXPECT_DOUBLE_EQ(model.tx_offset_at(t).norm(), 0.0);
  }
}

TEST(VibrationTest, RxDisplacementMillimeterScale) {
  VibrationModel::Config cfg;
  cfg.enabled = true;
  cfg.duration_s = 30.0;
  const VibrationModel model(cfg, util::Rng(2));
  double peak = 0.0;
  for (double t = 0.0; t < 30.0; t += 0.005) {
    peak = std::max(peak, model.rx_offset_at(0, t).norm());
  }
  EXPECT_GT(peak, 0.001);
  EXPECT_LT(peak, 0.015);
}

TEST(VibrationTest, PhoneMountMuchStiffer) {
  VibrationModel::Config cfg;
  cfg.enabled = true;
  cfg.duration_s = 30.0;
  const VibrationModel model(cfg, util::Rng(3));
  double rx_rms = 0.0;
  double tx_rms = 0.0;
  int n = 0;
  for (double t = 0.0; t < 30.0; t += 0.01) {
    rx_rms += model.rx_offset_at(0, t).norm_sq();
    tx_rms += model.tx_offset_at(t).norm_sq();
    ++n;
  }
  EXPECT_GT(std::sqrt(rx_rms / n), 3.0 * std::sqrt(tx_rms / n));
}

TEST(VibrationTest, AntennasVibrateDifferently) {
  // Fig. 16: the two antennas share the road but hang on different
  // mounts; their traces must be correlated in scale yet not identical.
  VibrationModel::Config cfg;
  cfg.enabled = true;
  const VibrationModel model(cfg, util::Rng(4));
  double diff = 0.0;
  for (double t = 0.0; t < 10.0; t += 0.01) {
    diff += (model.rx_offset_at(0, t) - model.rx_offset_at(1, t)).norm();
  }
  EXPECT_GT(diff, 0.01);
}

TEST(VibrationTest, ContinuousTrace) {
  VibrationModel::Config cfg;
  cfg.enabled = true;
  cfg.duration_s = 20.0;
  const VibrationModel model(cfg, util::Rng(5));
  geom::Vec3 prev = model.rx_offset_at(0, 0.0);
  for (double t = 0.001; t < 20.0; t += 0.001) {
    const geom::Vec3 cur = model.rx_offset_at(0, t);
    EXPECT_LT((cur - prev).norm(), 0.002);
    prev = cur;
  }
}

TEST(VibrationTest, BumpsDecay) {
  VibrationModel::Config cfg;
  cfg.enabled = true;
  cfg.duration_s = 60.0;
  cfg.mean_bump_interval_s = 2.0;  // frequent bumps for the test
  const VibrationModel model(cfg, util::Rng(6));
  // Vertical excursion stays bounded even with many bumps.
  for (double t = 0.0; t < 60.0; t += 0.01) {
    EXPECT_LT(std::abs(model.rx_offset_at(0, t).z), 0.02);
  }
}

}  // namespace
}  // namespace vihot::motion
