// Unit tests for the observability primitives: Counter, Histogram,
// Registry serialization, and the fixed Sink structs the pipeline and
// engine report into.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/sink.h"

namespace vihot::obs {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int k = 0; k < kThreads; ++k) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram h{1.0, 2.0, 5.0};
  ASSERT_EQ(h.num_bounds(), 3u);
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (bounds are inclusive)
  h.observe(1.5);   // <= 2.0
  h.observe(4.0);   // <= 5.0
  h.observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +inf bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 107.0, 1e-12);
  EXPECT_NEAR(h.mean(), 21.4, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(HistogramTest, EmptyReportsZeros) {
  const Histogram h{1.0};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramTest, TracksExtremesIncludingNegatives) {
  Histogram h{0.0, 10.0};
  h.observe(-3.0);
  h.observe(7.0);
  h.observe(2.0);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(HistogramTest, ConcurrentObservationsKeepTotals) {
  Histogram h{10.0, 100.0, 1000.0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int k = 0; k < kThreads; ++k) {
    threads.emplace_back([&h, k] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(k + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  // sum = 10000 * (1 + 2 + 3 + 4)
  EXPECT_NEAR(h.sum(), 100000.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_EQ(h.bucket_count(0), h.count());  // all <= 10
}

TEST(RegistryTest, OwnsAndAttachesMetrics) {
  Registry reg;
  Counter& owned = reg.counter("frames");
  owned.inc(3);
  // Re-requesting the same name returns the same metric.
  EXPECT_EQ(&reg.counter("frames"), &owned);
  EXPECT_EQ(reg.counter_value("frames"), 3u);
  EXPECT_EQ(reg.counter_value("unknown"), 0u);

  Counter external;
  external.inc(7);
  reg.attach("ext.frames", external);
  EXPECT_EQ(reg.counter_value("ext.frames"), 7u);

  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  h.observe(1.5);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, WritesJsonWithBothFamilies) {
  Registry reg;
  reg.counter("hits").inc(2);
  Histogram& h = reg.histogram("cost", {0.5, 1.0});
  h.observe(0.25);
  h.observe(2.0);

  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cost\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
  // Balanced braces, single root object.
  EXPECT_EQ(json.front(), '{');
  std::size_t open = 0;
  std::size_t close = 0;
  for (const char c : json) {
    open += c == '{';
    close += c == '}';
  }
  EXPECT_EQ(open, close);
}

TEST(RegistryTest, WritesCsvRows) {
  Registry reg;
  reg.counter("hits").inc(5);
  reg.histogram("cost", {1.0}).observe(0.5);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("counter,hits,value,5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,cost,count,1"), std::string::npos);
  EXPECT_NE(csv.find("le_inf"), std::string::npos);
}

TEST(SinkTest, AttachRegistersTrackerAndEngineFamilies) {
  Sink sink;
  sink.tracker.estimates.inc(4);
  sink.engine.batches.inc(2);
  sink.engine.batch_latency_us.observe(120.0);

  Registry reg;
  sink.attach_to(reg);
  EXPECT_EQ(reg.counter_value("tracker.estimates"), 4u);
  EXPECT_EQ(reg.counter_value("engine.batches"), 2u);

  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("tracker.estimates"), std::string::npos);
  EXPECT_NE(json.find("engine.batch_latency_us"), std::string::npos);
  EXPECT_NE(json.find("tracker.dtw_best_cost"), std::string::npos);

  // A prefix namespaces every family (multi-engine deployments).
  Registry prefixed;
  sink.attach_to(prefixed, "car7.");
  EXPECT_EQ(prefixed.counter_value("car7.tracker.estimates"), 4u);
}

TEST(SinkTest, SnapshotCopiesCounters) {
  Sink sink;
  sink.tracker.estimates.inc(9);
  sink.tracker.relock_widen.inc(2);
  sink.tracker.dtw_best_cost.observe(0.5);
  sink.tracker.dtw_best_cost.observe(1.5);
  const TrackerStatsSnapshot snap = snapshot(sink.tracker);
  EXPECT_EQ(snap.estimates, 9u);
  EXPECT_EQ(snap.relock_widen, 2u);
  EXPECT_DOUBLE_EQ(snap.dtw_best_cost_mean, 1.0);
}

}  // namespace
}  // namespace vihot::obs
