// Golden-corpus regression gate: every checked-in .vrlog under
// tests/corpus/ must load clean and replay bit-identically on the
// current tree. A failure here means a code change altered the
// pipeline's numerical behavior — either fix the regression or, if the
// change is intentional, regenerate the corpus with
// tools/gen_corpus.sh --update and explain the delta in the PR.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "replay/replayer.h"

namespace vihot::replay {
namespace {

TEST(Corpus, EveryGoldenLogReplaysBitIdentically) {
  namespace fs = std::filesystem;
  const fs::path dir = VIHOT_CORPUS_DIR;
  ASSERT_TRUE(fs::is_directory(dir))
      << dir << " missing — run tools/gen_corpus.sh --update";
  std::size_t logs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".vrlog") continue;
    ++logs;
    SCOPED_TRACE(entry.path().filename().string());
    const LoadedLog log = LoadedLog::load(entry.path().string());
    ASSERT_TRUE(log.ok()) << log.error();
    EXPECT_TRUE(log.summary().has_footer);
    EXPECT_FALSE(log.summary().truncated);
    const ReplayResult result = replay(log);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.results_compared, 0u);
    EXPECT_TRUE(result.bit_identical())
        << format_report(entry.path().string(), result);
  }
  EXPECT_GE(logs, 6u) << "corpus is thinner than the seeded 4 flag "
                         "scenarios + 2 recorded scenario packs";
}

}  // namespace
}  // namespace vihot::replay
