// TrackerConfig layout-bump coverage (kConfigLayoutVersion 1 -> 2).
//
// The fixtures under tests/replay/fixtures/layout_v1/ are the four
// golden-corpus logs exactly as recorded BEFORE the pluggable-backend
// refactor (layout v1, pre-refactor pipeline bytes). Replaying them
// bit-identically on the current tree proves two things at once: the
// v1 back-compat read path fills the new backend fields with defaults
// correctly, and the default backends (kEqDiff + kDtw) reproduce the
// pre-refactor pipeline bit-for-bit.
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "replay/replayer.h"
#include "replay/vrlog.h"

namespace vihot::replay {
namespace {

// Byte length of the fields layout v2 appends after
// soft_continuity_weight: sanitizer_backend u8 + 5 Kalman f64 +
// tracker_backend u8 + 13 EKF f64 + relock_patience u64 + 2 EKF f64.
constexpr std::size_t kV2TailBytes = 1 + 5 * 8 + 1 + 13 * 8 + 8 + 2 * 8;

/// Re-encodes `cfg` as a layout-v1 payload: the v2 encoding minus the
/// appended tail, with the leading version u32 patched to 1.
std::vector<unsigned char> encode_v1(const core::TrackerConfig& cfg) {
  std::vector<unsigned char> v2;
  encode_tracker_config(v2, cfg);
  std::vector<unsigned char> v1(v2.begin(),
                                v2.end() - static_cast<long>(kV2TailBytes));
  std::vector<unsigned char> version;
  put_u32(version, 1);
  for (std::size_t i = 0; i < version.size(); ++i) v1[i] = version[i];
  return v1;
}

TEST(LayoutCompat, PreRefactorFixturesReplayBitIdentically) {
  namespace fs = std::filesystem;
  const fs::path dir = VIHOT_LAYOUT_V1_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir << " missing";
  std::size_t logs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".vrlog") continue;
    ++logs;
    SCOPED_TRACE(entry.path().filename().string());
    const LoadedLog log = LoadedLog::load(entry.path().string());
    ASSERT_TRUE(log.ok()) << log.error();
    EXPECT_TRUE(log.summary().has_footer);
    const ReplayResult result = replay(log);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.results_compared, 0u);
    EXPECT_TRUE(result.bit_identical())
        << format_report(entry.path().string(), result);
  }
  EXPECT_GE(logs, 4u) << "expected the 4 pre-refactor corpus scenarios";
}

TEST(LayoutCompat, V1PayloadDecodesWithDefaultBackends) {
  core::TrackerConfig cfg;
  cfg.matcher.window_s = 0.123456789;
  cfg.relock_patience = 7;
  cfg.soft_continuity_weight = 0.25;
  // Backend fields are NOT representable in v1; set them off-default to
  // prove the decoder resets them rather than leaking them through.
  cfg.sanitizer_backend = core::SanitizerBackend::kKalman;
  cfg.tracker_backend = core::TrackerBackend::kEkf;
  cfg.kalman.gate_sigma = 99.0;
  cfg.ekf.relock_gate = 123.0;

  const std::vector<unsigned char> v1 = encode_v1(cfg);
  Cursor in(v1.data(), v1.size());
  core::TrackerConfig back;
  ASSERT_TRUE(decode_tracker_config(in, &back));
  EXPECT_TRUE(in.exhausted());

  // v1 fields round-trip...
  EXPECT_EQ(back.matcher.window_s, cfg.matcher.window_s);
  EXPECT_EQ(back.relock_patience, cfg.relock_patience);
  EXPECT_EQ(back.soft_continuity_weight, cfg.soft_continuity_weight);
  // ...and the backend selection comes back as the defaults that
  // reproduce a v1 log's pipeline.
  EXPECT_EQ(back.sanitizer_backend, core::SanitizerBackend::kEqDiff);
  EXPECT_EQ(back.tracker_backend, core::TrackerBackend::kDtw);
  EXPECT_EQ(back.kalman.gate_sigma, core::KalmanSanitizerConfig{}.gate_sigma);
  EXPECT_EQ(back.ekf.relock_gate, core::EkfFusionConfig{}.relock_gate);
}

TEST(LayoutCompat, V2RoundTripsBackendSelection) {
  core::TrackerConfig cfg;
  cfg.sanitizer_backend = core::SanitizerBackend::kKalman;
  cfg.tracker_backend = core::TrackerBackend::kEkf;
  cfg.kalman.process_noise_rad2_s = 1.5;
  cfg.ekf.steer_noise_inflation = 42.0;
  cfg.ekf.relock_patience = 11;

  std::vector<unsigned char> buf;
  encode_tracker_config(buf, cfg);
  Cursor in(buf.data(), buf.size());
  core::TrackerConfig back;
  ASSERT_TRUE(decode_tracker_config(in, &back));
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(back.sanitizer_backend, core::SanitizerBackend::kKalman);
  EXPECT_EQ(back.tracker_backend, core::TrackerBackend::kEkf);
  EXPECT_EQ(back.kalman.process_noise_rad2_s, 1.5);
  EXPECT_EQ(back.ekf.steer_noise_inflation, 42.0);
  EXPECT_EQ(back.ekf.relock_patience, 11);

  std::vector<unsigned char> again;
  encode_tracker_config(again, back);
  EXPECT_EQ(buf, again);
}

TEST(LayoutCompat, CorruptedNewLayoutIsRejected) {
  core::TrackerConfig cfg;
  std::vector<unsigned char> buf;
  encode_tracker_config(buf, cfg);

  // Unknown future version.
  {
    std::vector<unsigned char> bad = buf;
    std::vector<unsigned char> version;
    put_u32(version, kConfigLayoutVersion + 1);
    for (std::size_t i = 0; i < version.size(); ++i) bad[i] = version[i];
    Cursor in(bad.data(), bad.size());
    core::TrackerConfig back;
    EXPECT_FALSE(decode_tracker_config(in, &back));
  }
  // Out-of-range sanitizer backend enum (first byte of the v2 tail).
  {
    std::vector<unsigned char> bad = buf;
    bad[bad.size() - kV2TailBytes] = 0x07;
    Cursor in(bad.data(), bad.size());
    core::TrackerConfig back;
    EXPECT_FALSE(decode_tracker_config(in, &back));
  }
  // Out-of-range tracker backend enum (after the Kalman block).
  {
    std::vector<unsigned char> bad = buf;
    bad[bad.size() - kV2TailBytes + 1 + 5 * 8] = 0x09;
    Cursor in(bad.data(), bad.size());
    core::TrackerConfig back;
    EXPECT_FALSE(decode_tracker_config(in, &back));
  }
  // Truncated v2 tail (version says v2 but the bytes end early).
  {
    std::vector<unsigned char> bad(buf.begin(), buf.end() - 8);
    Cursor in(bad.data(), bad.size());
    core::TrackerConfig back;
    EXPECT_FALSE(decode_tracker_config(in, &back));
  }
}

}  // namespace
}  // namespace vihot::replay
