// Replay-at-offset regression gate (ctest label: replay-gate).
//
// ReplayOptions::time_offset re-bases a recording with ONE shared
// additive delta across every stream (feeds and ticks alike) — a
// monotone map, so the recording's inter-arrival order is preserved and
// no sample can be rejected as stale/out-of-order by the re-basing
// itself. This is the property the daemon load generator builds on: a
// replica's clock is exactly a time_offset re-base, so a regression
// here silently breaks every soak replica too.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "replay/replayer.h"

namespace vihot::replay {
namespace {

std::filesystem::path corpus_dir() { return VIHOT_CORPUS_DIR; }

TEST(ReplayOffset, RebasedRunsFeedCleanlyAtAnyDelta) {
  namespace fs = std::filesystem;
  ASSERT_TRUE(fs::is_directory(corpus_dir()));
  // Small, huge, and negative deltas: order preservation must not
  // depend on the delta's sign or magnitude.
  const double offsets[] = {1.5, 1.0e6, -5.0};
  std::size_t logs = 0;
  for (const auto& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".vrlog") continue;
    ++logs;
    SCOPED_TRACE(entry.path().filename().string());
    const LoadedLog log = LoadedLog::load(entry.path().string());
    ASSERT_TRUE(log.ok()) << log.error();
    for (const double offset : offsets) {
      SCOPED_TRACE(offset);
      ReplayOptions options;
      options.time_offset = offset;
      const ReplayResult result = replay(log, options);
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_TRUE(result.rebased);
      EXPECT_TRUE(result.fed_cleanly())
          << result.feeds_rejected << " feeds rejected at offset " << offset;
      // Re-based runs skip the bit-compare but must still drive ticks.
      EXPECT_GT(result.ticks_replayed, 0u);
    }
  }
  EXPECT_GE(logs, 4u);
}

TEST(ReplayOffset, ZeroOffsetStaysOnTheBitIdenticalPath) {
  // offset 0 must not flip the run into "rebased" mode — the bit-compare
  // gate still applies.
  const auto path = corpus_dir() / "baseline.vrlog";
  const LoadedLog log = LoadedLog::load(path.string());
  ASSERT_TRUE(log.ok()) << log.error();
  ReplayOptions options;
  options.time_offset = 0.0;
  const ReplayResult result = replay(log, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.rebased);
  EXPECT_TRUE(result.bit_identical());
}

}  // namespace
}  // namespace vihot::replay
