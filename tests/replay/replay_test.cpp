// End-to-end flight-recorder tests: record a live TrackerEngine run,
// replay it from the log, and require bit-identical outputs — across the
// synchronous push path, the async offer rings (with genuinely
// concurrent producers), session churn, and camera fallback feeds. Also
// the negative space: corrupt logs are rejected, a perturbed config
// yields a structured first-divergence report, and truncated logs
// refuse the bit-exactness claim. The concurrent tests double as the
// replay-gate's TSan targets.
#include "replay/replayer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdio>
#include <fstream>
#include <thread>

#include "engine/tracker_engine.h"
#include "replay/recorder.h"

namespace vihot::replay {
namespace {

using engine::SessionId;
using engine::TrackerEngine;

double phase_of(double theta) {
  return 0.8 * std::sin(1.3 * theta) + 0.35 * std::sin(2.6 * theta + 0.7);
}

core::CsiProfile make_profile() {
  core::PositionProfile pos;
  pos.position_index = 0;
  pos.fingerprint_phase = phase_of(0.0);
  pos.csi.t0 = 0.0;
  pos.csi.dt = 1.0 / 200.0;
  pos.orientation.t0 = 0.0;
  pos.orientation.dt = pos.csi.dt;
  const double period = 5.0;
  for (std::size_t k = 0; k < 1500; ++k) {
    const double t = pos.csi.time_at(k);
    const double u = std::fmod(t, period) / period;
    const double theta = (u < 0.5) ? (-2.0 + 8.0 * u) : (6.0 - 8.0 * u);
    pos.orientation.values.push_back(theta);
    pos.csi.values.push_back(phase_of(theta));
  }
  core::CsiProfile profile;
  profile.positions.push_back(std::move(pos));
  return profile;
}

wifi::CsiMeasurement measurement(double t, double phi) {
  wifi::CsiMeasurement m;
  m.t = t;
  m.h[0].assign(4, std::polar(1.0, phi));
  m.h[1].assign(4, {1.0, 0.0});
  return m;
}

imu::ImuSample imu_sample(double t, double yaw) {
  imu::ImuSample s;
  s.t = t;
  s.gyro_yaw_rad_s = yaw;
  s.accel_lateral_mps2 = 0.15 * yaw;
  return s;
}

class ReplayTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Per-test file name: ctest -jN runs cases of this fixture in
  // parallel processes, and a shared path races.
  std::string path_ =
      ::testing::TempDir() + "vihot_replay_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".vrlog";
};

TEST_F(ReplayTest, SyncRunReplaysBitIdentically) {
  {
    Recorder recorder({path_});
    ASSERT_TRUE(recorder.ok());
    TrackerEngine eng({0, nullptr, true, {}, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    const SessionId b = eng.create_session(profile);
    for (double t = 0.0; t < 3.0; t += 0.004) {
      eng.push_csi(a, measurement(t, phase_of(-1.0 + 0.6 * t)));
      eng.push_csi(b, measurement(t, phase_of(1.2 - 0.5 * t)));
      if (std::fmod(t, 0.02) < 0.004) {
        eng.push_imu(a, imu_sample(t, 0.01));
        eng.push_imu(b, imu_sample(t, -0.02));
      }
    }
    for (int k = 0; k < 40; ++k) (void)eng.estimate_all(1.0 + 0.05 * k);
    ASSERT_TRUE(recorder.close());
  }
  const LoadedLog log = LoadedLog::load(path_);
  ASSERT_TRUE(log.ok()) << log.error();
  EXPECT_EQ(log.summary().session_starts, 2u);
  EXPECT_EQ(log.summary().ticks, 40u);
  EXPECT_TRUE(log.summary().has_footer);

  const ReplayResult result = replay(log);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.ticks_replayed, 40u);
  EXPECT_EQ(result.results_compared, 80u);
  EXPECT_TRUE(result.bit_identical())
      << format_report(path_, result);
}

TEST_F(ReplayTest, ConcurrentOfferRunReplaysBitIdentically) {
  // Producers race the tick loop through the async rings: the live
  // interleaving is nondeterministic, but the log captures the one that
  // happened and replay must reproduce its outputs exactly.
  {
    Recorder recorder({path_});
    ASSERT_TRUE(recorder.ok());
    engine::IngestConfig ingest;
    ingest.csi_capacity = 256;
    ingest.imu_capacity = 64;
    TrackerEngine eng({2, nullptr, true, ingest, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    const SessionId b = eng.create_session(profile);

    std::thread producer([&] {
      for (double t = 0.0; t < 3.0; t += 0.004) {
        eng.offer_csi(a, measurement(t, phase_of(-1.0 + 0.6 * t)));
        eng.offer_csi(b, measurement(t, phase_of(1.2 - 0.5 * t)));
        if (std::fmod(t, 0.02) < 0.004) {
          eng.offer_imu(a, imu_sample(t, 0.01));
        }
      }
    });
    for (double t = 1.0; t < 3.0; t += 0.05) (void)eng.estimate_all(t);
    producer.join();
    (void)eng.estimate_all(3.0);  // apply any tail samples
    ASSERT_TRUE(recorder.close());
  }
  const LoadedLog log = LoadedLog::load(path_);
  ASSERT_TRUE(log.ok()) << log.error();
  const ReplayResult result = replay(log);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.bit_identical())
      << format_report(path_, result);
}

TEST_F(ReplayTest, SessionChurnAndCameraReplay) {
  {
    Recorder recorder({path_});
    ASSERT_TRUE(recorder.ok());
    TrackerEngine eng({0, nullptr, true, {}, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    for (double t = 0.0; t < 1.5; t += 0.004) {
      eng.push_csi(a, measurement(t, phase_of(-1.0 + 0.6 * t)));
    }
    (void)eng.estimate_all(1.0);
    (void)eng.estimate_all(1.2);

    // Mid-run churn: a second session joins, the first one leaves.
    const SessionId b = eng.create_session(profile);
    for (double t = 1.2; t < 2.5; t += 0.004) {
      eng.push_csi(b, measurement(t, phase_of(0.5 * t)));
      eng.push_camera(b, {t, 0.3, true});
    }
    (void)eng.estimate_all(1.4);
    eng.destroy_session(a);
    (void)eng.estimate_all(2.0);
    (void)eng.estimate_all(2.4);
    ASSERT_TRUE(recorder.close());
  }
  const LoadedLog log = LoadedLog::load(path_);
  ASSERT_TRUE(log.ok()) << log.error();
  EXPECT_EQ(log.summary().session_starts, 2u);
  EXPECT_EQ(log.summary().session_ends, 1u);
  EXPECT_GT(log.summary().camera_frames, 0u);

  const ReplayResult result = replay(log);
  ASSERT_TRUE(result.ok) << result.error;
  // 2 + 2 + 1 solo ticks with one session, one tick with two.
  EXPECT_EQ(result.ticks_replayed, 5u);
  EXPECT_EQ(result.results_compared, 6u);
  EXPECT_TRUE(result.bit_identical())
      << format_report(path_, result);
}

TEST_F(ReplayTest, ThreadCountOverrideStaysBitIdentical) {
  {
    Recorder recorder({path_});
    ASSERT_TRUE(recorder.ok());
    TrackerEngine eng({0, nullptr, true, {}, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    for (double t = 0.0; t < 2.0; t += 0.004) {
      eng.push_csi(a, measurement(t, phase_of(-1.0 + 0.8 * t)));
    }
    for (double t = 1.0; t < 2.0; t += 0.05) (void)eng.estimate_all(t);
    ASSERT_TRUE(recorder.close());
  }
  const LoadedLog log = LoadedLog::load(path_);
  ASSERT_TRUE(log.ok()) << log.error();
  // Recorded inline; replayed with a 3-worker pool. The matcher
  // equivalence invariant promises identical estimates regardless.
  ReplayOptions options;
  options.num_threads = 3;
  const ReplayResult result = replay(log, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.bit_identical())
      << format_report(path_, result);
}

TEST_F(ReplayTest, PerturbedConfigYieldsFirstDivergenceReport) {
  {
    Recorder recorder({path_});
    ASSERT_TRUE(recorder.ok());
    TrackerEngine eng({0, nullptr, true, {}, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    for (double t = 0.0; t < 3.0; t += 0.004) {
      eng.push_csi(a, measurement(t, phase_of(-1.0 + 0.6 * t)));
    }
    for (double t = 1.0; t < 3.0; t += 0.05) (void)eng.estimate_all(t);
    ASSERT_TRUE(recorder.close());
  }
  const LoadedLog log = LoadedLog::load(path_);
  ASSERT_TRUE(log.ok()) << log.error();

  core::TrackerConfig perturbed;
  perturbed.matcher.window_s = 0.35;  // vs the recorded default
  ReplayOptions options;
  options.config_override = &perturbed;
  const ReplayResult result = replay(log, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_FALSE(result.divergences.empty())
      << "a changed matcher window must alter at least one output";
  const Divergence& first = result.divergences.front();
  EXPECT_FALSE(first.field.empty());
  EXPECT_NE(first.recorded, first.replayed);
  const std::string report = format_report(path_, result);
  EXPECT_NE(report.find("first divergence"), std::string::npos);
  EXPECT_NE(report.find(first.field), std::string::npos);
}

TEST_F(ReplayTest, FlippedByteIsRejectedByCrc) {
  {
    Recorder recorder({path_});
    ASSERT_TRUE(recorder.ok());
    TrackerEngine eng({0, nullptr, true, {}, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    for (double t = 0.0; t < 1.5; t += 0.004) {
      eng.push_csi(a, measurement(t, phase_of(0.4 * t)));
    }
    (void)eng.estimate_all(1.2);
    ASSERT_TRUE(recorder.close());
  }
  // Flip one byte deep in the body (past the file preamble).
  {
    std::fstream f(path_, std::ios::in | std::ios::out |
                              std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    ASSERT_GT(size, 2000);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  const LoadedLog log = LoadedLog::load(path_);
  EXPECT_FALSE(log.ok());
  EXPECT_NE(log.error().find("CRC mismatch"), std::string::npos)
      << log.error();
  const ReplayResult result = replay(log);
  EXPECT_FALSE(result.ok);
}

TEST_F(ReplayTest, RecorderStatsAreExported) {
  obs::Sink sink;
  {
    Recorder::Config rc;
    rc.path = path_;
    rc.sink = &sink;
    Recorder recorder(rc);
    ASSERT_TRUE(recorder.ok());
    TrackerEngine eng({0, nullptr, true, {}, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    for (double t = 0.0; t < 1.5; t += 0.004) {
      eng.push_csi(a, measurement(t, phase_of(0.4 * t)));
    }
    (void)eng.estimate_all(1.2);
    ASSERT_TRUE(recorder.close());
    const Recorder::Totals totals = recorder.totals();
    EXPECT_EQ(totals.csi_frames, sink.replay.frames_recorded.value() - 1)
        << "frames_recorded counts feeds plus the tick chunk";
    EXPECT_EQ(totals.staging_drops, 0u);
    EXPECT_FALSE(totals.truncated);
  }
  EXPECT_GT(sink.replay.bytes_written.value(), 0u);
  EXPECT_GE(sink.replay.writer_flushes.value(), 1u);
  EXPECT_EQ(sink.replay.staging_drops.value(), 0u);
  // The registry names the family "replay.*".
  obs::Registry registry;
  sink.attach_to(registry);
  std::ostringstream os;
  registry.write_json(os);
  EXPECT_NE(os.str().find("replay.bytes_written"), std::string::npos);
}

TEST_F(ReplayTest, TruncatedLogRefusesBitExactReplay) {
  obs::Sink sink;
  {
    // A staging pair too small for even one CSI chunk: every feed drops
    // and the footer records the truncation.
    Recorder::Config rc;
    rc.path = path_;
    rc.staging_bytes = 64;
    rc.sink = &sink;
    Recorder recorder(rc);
    ASSERT_TRUE(recorder.ok());
    TrackerEngine eng({0, nullptr, true, {}, &recorder});
    const auto profile = eng.add_profile(make_profile());
    const SessionId a = eng.create_session(profile);
    for (double t = 0.0; t < 1.0; t += 0.004) {
      eng.push_csi(a, measurement(t, phase_of(0.4 * t)));
    }
    (void)eng.estimate_all(0.9);
    ASSERT_TRUE(recorder.close());
    EXPECT_TRUE(recorder.totals().truncated);
    EXPECT_GT(recorder.totals().staging_drops, 0u);
  }
  EXPECT_GT(sink.replay.staging_drops.value(), 0u);
  const LoadedLog log = LoadedLog::load(path_);
  ASSERT_TRUE(log.ok()) << log.error();
  EXPECT_TRUE(log.summary().truncated);
  const ReplayResult result = replay(log);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("truncated"), std::string::npos);
}

TEST_F(ReplayTest, MissingFileAndGarbageFileFailCleanly) {
  EXPECT_FALSE(LoadedLog::load("/nonexistent/x.vrlog").ok());
  {
    std::ofstream os(path_, std::ios::binary);
    os << "this is not a vrlog at all";
  }
  const LoadedLog log = LoadedLog::load(path_);
  EXPECT_FALSE(log.ok());
  EXPECT_NE(log.error().find("magic"), std::string::npos) << log.error();
}

}  // namespace
}  // namespace vihot::replay
