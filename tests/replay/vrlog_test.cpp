// Format-layer tests of the .vrlog chunked binary codec: CRC, framing,
// scanner error handling, and bit-exact structured round trips.
#include "replay/vrlog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace vihot::replay {
namespace {

std::vector<unsigned char> file_preamble() {
  std::vector<unsigned char> out(kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kFormatVersion);
  return out;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, 8);
  return b;
}

TEST(Crc32, MatchesKnownVector) {
  // The canonical IEEE 802.3 check value: crc32("123456789").
  const unsigned char data[] = {'1', '2', '3', '4', '5',
                                '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data, sizeof(data)), 0xCBF43926u);
}

TEST(Crc32, SeedChainsPartialComputations) {
  const unsigned char data[] = {'a', 'b', 'c', 'd', 'e', 'f'};
  const std::uint32_t whole = crc32(data, 6);
  const std::uint32_t chained = crc32(data + 3, 3, crc32(data, 3));
  EXPECT_EQ(whole, chained);
}

TEST(Primitives, RoundTripThroughCursor) {
  std::vector<unsigned char> buf;
  put_u8(buf, 0xAB);
  put_u32(buf, 0xDEADBEEFu);
  put_u64(buf, 0x0123456789ABCDEFull);
  put_f64(buf, -0.0);
  put_f64(buf, std::numeric_limits<double>::denorm_min());
  put_f64(buf, std::numeric_limits<double>::quiet_NaN());

  Cursor in(buf.data(), buf.size());
  EXPECT_EQ(in.get_u8(), 0xAB);
  EXPECT_EQ(in.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.get_u64(), 0x0123456789ABCDEFull);
  // Bit-exact: -0.0 keeps its sign bit, denormals and NaN payloads
  // survive untouched.
  EXPECT_EQ(bits_of(in.get_f64()), bits_of(-0.0));
  EXPECT_EQ(bits_of(in.get_f64()),
            bits_of(std::numeric_limits<double>::denorm_min()));
  EXPECT_EQ(bits_of(in.get_f64()),
            bits_of(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(in.exhausted());
}

TEST(Cursor, FailsSoftPastTheEnd) {
  const unsigned char byte = 7;
  Cursor in(&byte, 1);
  EXPECT_EQ(in.get_u8(), 7);
  EXPECT_EQ(in.get_u64(), 0u);  // past the end: zero, flag set
  EXPECT_FALSE(in.ok());
  EXPECT_FALSE(in.exhausted());
  EXPECT_EQ(in.get_u32(), 0u);  // stays failed
}

TEST(Framing, AppendAndScanOneChunk) {
  std::vector<unsigned char> log = file_preamble();
  const unsigned char payload[] = {1, 2, 3, 4, 5};
  append_chunk(log, ChunkType::kCsi, payload, sizeof(payload));

  ChunkScanner scanner(log.data(), log.size());
  ASSERT_TRUE(scanner.valid_header());
  EXPECT_EQ(scanner.format_version(), kFormatVersion);
  const auto chunk = scanner.next();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->type, ChunkType::kCsi);
  ASSERT_EQ(chunk->size, sizeof(payload));
  EXPECT_EQ(std::memcmp(chunk->payload, payload, sizeof(payload)), 0);
  EXPECT_FALSE(scanner.next().has_value());
  EXPECT_FALSE(scanner.failed());
}

TEST(Framing, BeginFinishMatchesAppend) {
  std::vector<unsigned char> a = file_preamble();
  std::vector<unsigned char> b = a;
  const unsigned char payload[] = {9, 8, 7};
  append_chunk(a, ChunkType::kImu, payload, sizeof(payload));
  const std::size_t frame = begin_chunk(b);
  put_u8(b, 9);
  put_u8(b, 8);
  put_u8(b, 7);
  finish_chunk(b, frame, ChunkType::kImu);
  EXPECT_EQ(a, b);
}

TEST(Framing, EveryFlippedByteIsDetected) {
  std::vector<unsigned char> log = file_preamble();
  const unsigned char payload[] = {42, 43, 44, 45};
  append_chunk(log, ChunkType::kTickBegin, payload, sizeof(payload));

  // Flip each byte of the chunk (frame, payload and CRC) in turn: the
  // scanner must reject every single-byte corruption.
  for (std::size_t i = sizeof(kMagic) + 4; i < log.size(); ++i) {
    std::vector<unsigned char> bad = log;
    bad[i] ^= 0x01;
    ChunkScanner scanner(bad.data(), bad.size());
    ASSERT_TRUE(scanner.valid_header());
    const auto chunk = scanner.next();
    // A length-field flip may also surface as a truncation error; either
    // way the chunk must not parse cleanly.
    EXPECT_FALSE(chunk.has_value()) << "flipped byte " << i;
    EXPECT_TRUE(scanner.failed()) << "flipped byte " << i;
  }
}

TEST(Framing, TruncatedTailIsAnError) {
  std::vector<unsigned char> log = file_preamble();
  const unsigned char payload[] = {1, 2, 3};
  append_chunk(log, ChunkType::kCamera, payload, sizeof(payload));
  for (std::size_t cut = 1; cut < chunk_overhead() + sizeof(payload);
       ++cut) {
    std::vector<unsigned char> bad(log.begin(), log.end() - cut);
    ChunkScanner scanner(bad.data(), bad.size());
    ASSERT_TRUE(scanner.valid_header());
    EXPECT_FALSE(scanner.next().has_value());
    EXPECT_TRUE(scanner.failed()) << "cut " << cut;
  }
}

TEST(Framing, BadMagicAndVersionAreRejected) {
  std::vector<unsigned char> log = file_preamble();
  log[0] ^= 0xFF;
  EXPECT_FALSE(ChunkScanner(log.data(), log.size()).valid_header());

  std::vector<unsigned char> v2 = file_preamble();
  v2[sizeof(kMagic)] = 99;
  EXPECT_FALSE(ChunkScanner(v2.data(), v2.size()).valid_header());

  const unsigned char tiny[] = {'V', 'I'};
  EXPECT_FALSE(ChunkScanner(tiny, sizeof(tiny)).valid_header());
}

TEST(Codecs, TrackerConfigRoundTripsBitExactly) {
  core::TrackerConfig cfg;
  cfg.sanitizer.antenna_difference = false;
  cfg.sanitizer.single_subcarrier = 7;
  cfg.sanitizer.rx_null_ratio = {{0.25, -1.5}, {-0.0, 3e-310}};
  cfg.matcher.window_s = 0.123456789012345678;
  cfg.matcher.num_lengths = 11;
  cfg.steering.enabled = false;
  cfg.steering.detector.yaw_rate_threshold = 1e308;
  cfg.relock_patience = 9;
  cfg.soft_continuity_weight = std::numeric_limits<double>::denorm_min();

  std::vector<unsigned char> buf;
  encode_tracker_config(buf, cfg);
  Cursor in(buf.data(), buf.size());
  core::TrackerConfig back;
  ASSERT_TRUE(decode_tracker_config(in, &back));
  EXPECT_TRUE(in.exhausted());

  std::vector<unsigned char> again;
  encode_tracker_config(again, back);
  // Re-encoding the decoded config reproduces the same bytes: every
  // serialized field round-tripped bit-exactly.
  EXPECT_EQ(buf, again);
  EXPECT_EQ(back.sanitizer.rx_null_ratio.size(), 2u);
  EXPECT_EQ(back.relock_patience, 9);
}

TEST(Codecs, ConfigLayoutVersionIsChecked) {
  core::TrackerConfig cfg;
  std::vector<unsigned char> buf;
  encode_tracker_config(buf, cfg);
  buf[0] ^= 0xFF;  // layout version is the leading u32
  Cursor in(buf.data(), buf.size());
  core::TrackerConfig back;
  EXPECT_FALSE(decode_tracker_config(in, &back));
}

TEST(Codecs, ProfileRoundTripsBitExactly) {
  core::CsiProfile profile;
  profile.sample_rate_hz = 200.0;
  profile.reference_phase = -0.75;
  core::PositionProfile p;
  p.position_index = 3;
  p.fingerprint_phase = 0.1234567890123456789;
  p.true_position = {0.4, -0.3, 1.1};
  p.csi.t0 = 0.5;
  p.csi.dt = 0.005;
  p.csi.values = {1e-300, -0.0, 2.5, std::nextafter(1.0, 2.0)};
  p.orientation = p.csi;
  p.orientation.values = {0.0, 0.1, 0.2, 0.3};
  profile.positions.push_back(p);

  std::vector<unsigned char> buf;
  encode_profile(buf, profile);
  Cursor in(buf.data(), buf.size());
  core::CsiProfile back;
  ASSERT_TRUE(decode_profile(in, &back));
  EXPECT_TRUE(in.exhausted());

  std::vector<unsigned char> again;
  encode_profile(again, back);
  EXPECT_EQ(buf, again);
  ASSERT_EQ(back.positions.size(), 1u);
  EXPECT_EQ(back.positions[0].csi.values.size(), 4u);
  EXPECT_EQ(bits_of(back.positions[0].csi.values[1]), bits_of(-0.0));
}

TEST(Codecs, TrackResultRoundTripsBitExactly) {
  core::TrackResult r;
  r.valid = true;
  r.t = 12.345;
  r.theta_rad = -0.0;
  r.mode = core::TrackingMode::kCameraFallback;
  r.position_slot = 4;
  r.raw.valid = true;
  r.raw.match_distance = std::numeric_limits<double>::denorm_min();
  r.raw.runner_up_valid = true;
  r.raw.match_start = 120;
  r.raw.match_length = 64;
  r.raw.speed_ratio = 1.25;

  std::vector<unsigned char> buf;
  encode_track_result(buf, r);
  // The entry size helper also covers the 8-byte session id written
  // next to each result in a kTickEnd chunk.
  EXPECT_EQ(buf.size() + 8, tick_result_entry_size());
  Cursor in(buf.data(), buf.size());
  core::TrackResult back;
  ASSERT_TRUE(decode_track_result(in, &back));
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(back.mode, core::TrackingMode::kCameraFallback);
  EXPECT_EQ(bits_of(back.theta_rad), bits_of(-0.0));
  EXPECT_EQ(back.raw.match_start, 120u);
}

TEST(Codecs, CsiPayloadSizeMatchesHelper) {
  wifi::CsiMeasurement m;
  m.t = 1.5;
  m.h[0].assign(30, {0.5, -0.25});
  m.h[1].assign(30, {1.0, 0.0});
  std::vector<unsigned char> buf;
  encode_csi_payload(buf, 17, m, true);
  EXPECT_EQ(buf.size() + chunk_overhead(), csi_chunk_size(30));

  Cursor in(buf.data(), buf.size());
  std::uint64_t id = 0;
  wifi::CsiMeasurement back;
  bool offered = false;
  ASSERT_TRUE(decode_csi_payload(in, &id, &back, &offered));
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(id, 17u);
  EXPECT_TRUE(offered);
  ASSERT_EQ(back.num_subcarriers(), 30u);
  EXPECT_EQ(back.h[1][29], (std::complex<double>{1.0, 0.0}));
}

TEST(Codecs, AbsurdCountsAreRejectedNotReserved) {
  // A CSI payload declaring 2^31 subcarriers must fail cleanly instead
  // of attempting a multi-gigabyte reserve.
  std::vector<unsigned char> buf;
  put_u64(buf, 1);       // id
  put_f64(buf, 0.0);     // t
  put_u8(buf, 0);        // offered
  put_u32(buf, 1u << 31);
  Cursor in(buf.data(), buf.size());
  std::uint64_t id = 0;
  wifi::CsiMeasurement m;
  bool offered = false;
  EXPECT_FALSE(decode_csi_payload(in, &id, &m, &offered));
}

}  // namespace
}  // namespace vihot::replay
