// Scenario-pack gates (ctest label: scenario).
//
// Every named pack in the registry must (a) run end to end through the
// engine tier, (b) meet its own accuracy envelope, and (c) be fully
// deterministic: the same pack + seed produces a byte-identical .vrlog
// recording, including mid-log session churn. These are the gates the
// ISSUE calls "seeded scenario packs with replay gates" — tools/
// run_checks.sh runs this label in the default and tsan legs.
#include "scenario/runner.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <iterator>
#include <string>

#include "scenario/registry.h"
#include "replay/recorder.h"

namespace vihot::scenario {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

const OccupantOutcome* find_occupant(const ScenarioOutcome& res,
                                     const std::string& name) {
  for (const OccupantOutcome& o : res.occupants) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

TEST(ScenarioRegistry, HasTheAdvertisedPacks) {
  const auto& packs = all_packs();
  ASSERT_GE(packs.size(), 6u);
  for (const ScenarioSpec& p : packs) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.summary.empty());
    EXPECT_GT(p.duration_s, 0.0);
    EXPECT_NE(p.seed, 0u);
    ASSERT_NE(p.driver(), nullptr) << p.name;
    // Exactly one driver, and the registry's lookup round-trips.
    std::size_t drivers = 0;
    for (const OccupantSpec& o : p.occupants) {
      if (o.role == OccupantRole::kDriver) ++drivers;
    }
    EXPECT_EQ(drivers, 1u) << p.name;
    EXPECT_EQ(find_pack(p.name), &p);
  }
  EXPECT_EQ(find_pack("definitely_not_a_pack"), nullptr);
  // The six packs the docs promise, by name.
  for (const char* name :
       {"driver_only_baseline", "driver_passenger_crosstalk",
        "tracked_passenger", "rideshare_churn", "continuous_sweep",
        "faulted_full_cabin"}) {
    EXPECT_NE(find_pack(name), nullptr) << name;
  }
}

TEST(ScenarioPacks, EveryPackMeetsItsEnvelope) {
  for (const ScenarioSpec& pack : all_packs()) {
    const ScenarioOutcome res = run_pack(pack);
    EXPECT_TRUE(res.envelope_pass) << pack.name << ": "
        << (res.envelope_failures.empty() ? "(no detail)"
                                          : res.envelope_failures.front());
    EXPECT_GT(res.sessions_opened, 0u) << pack.name;
    EXPECT_GT(res.ticks, 0u) << pack.name;
    // Every tracked occupant locked and produced errors.
    for (const OccupantOutcome& o : res.occupants) {
      if (!o.tracked) continue;
      EXPECT_GT(o.evaluated, 0u) << pack.name << "/" << o.name;
      EXPECT_GE(o.relock_s, 0.0) << pack.name << "/" << o.name
                                 << " never locked";
    }
  }
}

TEST(ScenarioPacks, SameSeedRecordsByteIdenticalVrlog) {
  // The replay-gate contract, at the pack level: record rideshare_churn
  // (the pack with mid-log session churn) twice and compare bytes.
  const ScenarioSpec* pack = find_pack("rideshare_churn");
  ASSERT_NE(pack, nullptr);
  const std::string dir = ::testing::TempDir();
  const std::string tag = std::to_string(::getpid());
  std::string paths[2] = {dir + "pack_a." + tag + ".vrlog",
                          dir + "pack_b." + tag + ".vrlog"};
  for (const std::string& path : paths) {
    replay::Recorder::Config rc;
    rc.path = path;
    // The Recorder sheds feed chunks rather than block producers when
    // the writer thread falls behind (staging_drops) — which under a
    // loaded test runner is LEGITIMATE load-dependent truncation, not
    // lost determinism. Staging large enough to hold the whole ~8 MB
    // log makes drops impossible, and the truncation assert below
    // turns any residual shed into a loud, explained failure instead
    // of a baffling byte mismatch.
    rc.staging_bytes = 32u << 20;
    replay::Recorder rec(rc);
    ASSERT_TRUE(rec.ok()) << rec.error();
    RunOptions opt;
    opt.tap = &rec;
    const ScenarioOutcome res = run_pack(*pack, opt);
    EXPECT_GT(res.sessions_opened, 0u);
    const replay::Recorder::Totals totals = rec.totals();
    ASSERT_FALSE(totals.truncated)
        << "recorder shed " << totals.staging_drops << " chunk(s)";
  }
  const std::string a = slurp(paths[0]);
  const std::string b = slurp(paths[1]);
  ASSERT_GT(a.size(), 0u);
  EXPECT_TRUE(a == b) << "same pack + seed produced different .vrlog bytes";
  std::remove(paths[0].c_str());
  std::remove(paths[1].c_str());
}

TEST(ScenarioPacks, SeedOverrideChangesTheRun) {
  const ScenarioSpec* pack = find_pack("driver_only_baseline");
  ASSERT_NE(pack, nullptr);
  RunOptions other_seed;
  other_seed.seed_override = pack->seed + 17;
  const ScenarioOutcome a = run_pack(*pack, {}, false);
  const ScenarioOutcome b = run_pack(*pack, other_seed, false);
  const OccupantOutcome* da = find_occupant(a, "driver");
  const OccupantOutcome* db = find_occupant(b, "driver");
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  // Different seed, different scan schedule -> different error CDF.
  EXPECT_NE(da->errors.size(), db->errors.size());
}

TEST(ScenarioPacks, RideshareChurnOpensAndClosesSessionsLive) {
  const ScenarioSpec* pack = find_pack("rideshare_churn");
  ASSERT_NE(pack, nullptr);
  const ScenarioOutcome res = run_pack(*pack);
  // Driver + rider1 tracked; rider1 leaves mid-run.
  EXPECT_EQ(res.sessions_opened, 2u);
  EXPECT_EQ(res.sessions_closed, 1u);
  const OccupantOutcome* rider = find_occupant(res, "rider1");
  ASSERT_NE(rider, nullptr);
  EXPECT_TRUE(rider->tracked);
  EXPECT_GT(rider->enter_s, 0.0);
  EXPECT_LT(rider->leave_s, pack->duration_s);
  // Relock: session open -> first valid estimate, within the envelope.
  EXPECT_GE(rider->relock_s, 0.0);
  EXPECT_LE(rider->relock_s, pack->envelope.max_relock_s);
  // The untracked rear rider shows up in the roster outcome.
  const OccupantOutcome* rear = find_occupant(res, "rider2");
  ASSERT_NE(rear, nullptr);
  EXPECT_FALSE(rear->tracked);
  EXPECT_EQ(rear->errors.size(), 0u);
}

TEST(ScenarioPacks, TrackedPassengerServesTwoHeads) {
  const ScenarioSpec* pack = find_pack("tracked_passenger");
  ASSERT_NE(pack, nullptr);
  const ScenarioOutcome res = run_pack(*pack);
  EXPECT_EQ(res.sessions_opened, 2u);
  std::size_t tracked = 0;
  for (const OccupantOutcome& o : res.occupants) {
    if (!o.tracked) continue;
    ++tracked;
    EXPECT_GT(o.evaluated, 0u) << o.name;
    EXPECT_LE(o.errors.median_deg(), pack->envelope.max_median_deg)
        << o.name;
  }
  EXPECT_EQ(tracked, 2u);
}

TEST(ScenarioPacks, CrosstalkDegradationStaysBounded) {
  // Sec. 5.3.4 upgraded: the glancing passenger costs accuracy, but the
  // envelope keeps the degradation against the quiet baseline bounded.
  const ScenarioSpec* base = find_pack("driver_only_baseline");
  const ScenarioSpec* cross = find_pack("driver_passenger_crosstalk");
  ASSERT_NE(base, nullptr);
  ASSERT_NE(cross, nullptr);
  // Same seed for both runs isolates the passenger's contribution.
  RunOptions same_seed;
  same_seed.seed_override = cross->seed;
  const ScenarioOutcome quiet = run_pack(*base, same_seed, false);
  const ScenarioOutcome noisy = run_pack(*cross);
  const OccupantOutcome* dq = find_occupant(quiet, "driver");
  const OccupantOutcome* dn = find_occupant(noisy, "driver");
  ASSERT_NE(dq, nullptr);
  ASSERT_NE(dn, nullptr);
  ASSERT_GT(dq->errors.size(), 0u);
  ASSERT_GT(dn->errors.size(), 0u);
  EXPECT_LE(dn->errors.median_deg(),
            dq->errors.median_deg() + cross->envelope.max_median_deg)
      << "crosstalk blew the driver's median past the allowed degradation";
}

TEST(ScenarioPacks, DurationOverrideScalesTheRoster) {
  // Recording runs shorten packs; presence fractions must scale with the
  // overridden duration, and the min_evaluated floor scales down too
  // (check_envelope off mirrors how vihot_sim records).
  const ScenarioSpec* pack = find_pack("rideshare_churn");
  ASSERT_NE(pack, nullptr);
  RunOptions opt;
  opt.duration_override_s = 5.0;
  const ScenarioOutcome res = run_pack(*pack, opt, false);
  const OccupantOutcome* rider = find_occupant(res, "rider1");
  ASSERT_NE(rider, nullptr);
  EXPECT_NEAR(rider->enter_s, 0.25 * 5.0, 1e-9);
  EXPECT_NEAR(rider->leave_s, 0.80 * 5.0, 1e-9);
  EXPECT_EQ(res.sessions_opened, 2u);
  EXPECT_EQ(res.sessions_closed, 1u);
}

}  // namespace
}  // namespace vihot::scenario
