#include "sim/drive_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/scenario.h"
#include "util/angle.h"

namespace vihot::sim {
namespace {

ScenarioConfig config_with(bool passenger, bool vibration, bool music) {
  ScenarioConfig c;
  c.seed = 3;
  c.runtime_duration_s = 20.0;
  c.passenger_present = passenger;
  c.antenna_vibration = vibration;
  c.music_playing = music;
  return c;
}

TEST(ScenarioTest, ResolvedSpeedsUseDriverHabits) {
  ScenarioConfig c;
  c.profiling_speed_rad_s = 0.0;
  c.head_turn_speed_rad_s = 0.0;
  EXPECT_NEAR(resolved_profiling_speed(c), 0.7 * c.driver.turn_speed_rad_s,
              1e-12);
  EXPECT_DOUBLE_EQ(resolved_turn_speed(c), c.driver.turn_speed_rad_s);
  c.profiling_speed_rad_s = 1.0;
  c.head_turn_speed_rad_s = 2.0;
  EXPECT_DOUBLE_EQ(resolved_profiling_speed(c), 1.0);
  EXPECT_DOUBLE_EQ(resolved_turn_speed(c), 2.0);
}

TEST(DriveSessionTest, StateTogglesFollowConfig) {
  const ScenarioConfig plain = config_with(false, false, false);
  const ScenarioConfig full = config_with(true, true, true);
  util::Rng rng1(9);
  util::Rng rng2(9);
  const DriveSession a(plain, plain.driver.head_center, std::move(rng1));
  const DriveSession b(full, full.driver.head_center, std::move(rng2));

  bool saw_music = false;
  bool saw_vibration = false;
  for (double t = 0.5; t < 15.0; t += 0.01) {
    const channel::CabinState sa = a.cabin_state_at(t);
    const channel::CabinState sb = b.cabin_state_at(t);
    EXPECT_FALSE(sa.passenger_present);
    EXPECT_TRUE(sb.passenger_present);
    EXPECT_DOUBLE_EQ(sa.music_displacement_m, 0.0);
    EXPECT_DOUBLE_EQ(sa.rx_offset[0].norm(), 0.0);
    saw_music |= sb.music_displacement_m != 0.0;
    saw_vibration |= sb.rx_offset[0].norm() > 1e-5;
  }
  EXPECT_TRUE(saw_music);
  EXPECT_TRUE(saw_vibration);
}

TEST(DriveSessionTest, HeadStateMatchesCabinState) {
  const ScenarioConfig c = config_with(false, false, false);
  util::Rng rng(11);
  const DriveSession session(c, c.driver.head_center, std::move(rng));
  for (double t = 0.0; t < 10.0; t += 0.37) {
    EXPECT_DOUBLE_EQ(session.head_at(t).pose.theta,
                     session.cabin_state_at(t).head.theta);
  }
}

TEST(DriveSessionTest, SteeringOffMeansNoTurnEvents) {
  ScenarioConfig c = config_with(false, false, false);
  c.steering_events = false;
  util::Rng rng(13);
  const DriveSession session(c, c.driver.head_center, std::move(rng));
  EXPECT_TRUE(session.steering().events().empty());
  for (double t = 0.0; t < 15.0; t += 0.1) {
    EXPECT_LT(std::abs(session.car_at(t).yaw_rate_rad_s), 0.02);
  }
}

TEST(ProfilingMotionTest, HoldThenSweep) {
  ScenarioConfig c;
  c.profiling_hold_s = 1.5;
  c.profiling_sweep_s = 8.0;
  const ProfilingMotion motion(c, c.driver.head_center);
  EXPECT_DOUBLE_EQ(motion.duration(), 9.5);
  // Hold: exactly forward.
  for (double u = 0.0; u < 1.4; u += 0.1) {
    EXPECT_DOUBLE_EQ(motion.head_at(u).pose.theta, 0.0);
  }
  // Sweep: covers a wide range.
  double lo = 1e9;
  double hi = -1e9;
  for (double u = 1.5; u < 9.5; u += 0.01) {
    const double theta = motion.head_at(u).pose.theta;
    lo = std::min(lo, theta);
    hi = std::max(hi, theta);
  }
  EXPECT_LT(lo, util::deg_to_rad(-80.0));
  EXPECT_GT(hi, util::deg_to_rad(80.0));
  // Continuity at the hold->sweep transition.
  EXPECT_NEAR(motion.head_at(1.5001).pose.theta, 0.0, 0.01);
}

TEST(ProfilingMotionTest, CabinStateIsQuiet) {
  ScenarioConfig c;
  const ProfilingMotion motion(c, c.driver.head_center);
  const channel::CabinState st = motion.cabin_state_at(3.0);
  EXPECT_FALSE(st.passenger_present);
  EXPECT_DOUBLE_EQ(st.steering_rim_angle, 0.0);
  EXPECT_DOUBLE_EQ(st.rx_offset[0].norm(), 0.0);
}

TEST(MakeChannelTest, DriftPerturbsStaticReflectors) {
  ScenarioConfig c;
  util::Rng rng1(5);
  util::Rng rng2(5);
  const channel::ChannelModel clean = make_channel(c, 0.0, rng1);
  const channel::ChannelModel drifted = make_channel(c, 0.01, rng2);
  double moved = 0.0;
  for (std::size_t i = 0; i < clean.scene().static_reflectors.size(); ++i) {
    moved += geom::distance(clean.scene().static_reflectors[i].position,
                            drifted.scene().static_reflectors[i].position);
  }
  EXPECT_GT(moved, 0.01);
  // Antennas and head do not drift.
  EXPECT_DOUBLE_EQ(
      geom::distance(clean.scene().rx[0].position,
                     drifted.scene().rx[0].position),
      0.0);
}

TEST(MakeChannelTest, UsesConfiguredBand) {
  ScenarioConfig c;
  c.subcarrier.center_freq_hz = 5.18e9;
  util::Rng rng(5);
  const channel::ChannelModel model = make_channel(c, 0.0, rng);
  EXPECT_NEAR(model.grid().frequency(model.grid().size() / 2), 5.18e9, 2e6);
}

}  // namespace
}  // namespace vihot::sim
