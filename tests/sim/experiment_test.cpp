#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace vihot::sim {
namespace {

ScenarioConfig small_config(std::uint64_t seed = 31) {
  ScenarioConfig c;
  c.seed = seed;
  c.runtime_sessions = 1;
  c.runtime_duration_s = 15.0;
  c.profiling_sweep_s = 8.0;
  return c;
}

TEST(ExperimentTest, ProfileBuildsDeterministically) {
  ExperimentRunner a(small_config());
  ExperimentRunner b(small_config());
  const core::CsiProfile pa = a.build_profile();
  const core::CsiProfile pb = b.build_profile();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.positions[i].fingerprint_phase,
                     pb.positions[i].fingerprint_phase);
    ASSERT_EQ(pa.positions[i].csi.size(), pb.positions[i].csi.size());
    EXPECT_DOUBLE_EQ(pa.positions[i].csi.values[100],
                     pb.positions[i].csi.values[100]);
  }
}

TEST(ExperimentTest, SessionProducesErrorsAndDiagnostics) {
  ExperimentRunner runner(small_config());
  const core::CsiProfile profile = runner.build_profile();
  const SessionResult r = runner.run_session(profile, 0);
  EXPECT_GT(r.estimates, 200u);
  EXPECT_GT(r.evaluated, 10u);
  EXPECT_FALSE(r.errors.empty());
  // Clean channel: ~500 Hz sampling, gaps <= ~34 ms (Sec. 5.3.5).
  EXPECT_GT(r.csi_rate_hz, 430.0);
  EXPECT_LT(r.max_gap_s, 0.040);
  // No steering events configured: never in fallback.
  EXPECT_DOUBLE_EQ(r.fallback_fraction, 0.0);
}

TEST(ExperimentTest, SessionsDifferButAreSeedStable) {
  ExperimentRunner runner(small_config());
  const core::CsiProfile profile = runner.build_profile();
  const SessionResult r0a = runner.run_session(profile, 0);
  const SessionResult r0b = runner.run_session(profile, 0);
  const SessionResult r1 = runner.run_session(profile, 1);
  ASSERT_EQ(r0a.errors.size(), r0b.errors.size());
  EXPECT_DOUBLE_EQ(r0a.errors.median_deg(), r0b.errors.median_deg());
  // A different session index gives a different random world.
  EXPECT_NE(r0a.errors.size(), 0u);
  EXPECT_FALSE(r0a.errors.size() == r1.errors.size() &&
               r0a.errors.median_deg() == r1.errors.median_deg());
}

TEST(ExperimentTest, FullRunAggregates) {
  ScenarioConfig cfg = small_config();
  cfg.runtime_sessions = 2;
  ExperimentRunner runner(cfg);
  const ExperimentResult res = runner.run();
  EXPECT_EQ(res.sessions.size(), 2u);
  EXPECT_EQ(res.errors.size(),
            res.sessions[0].errors.size() + res.sessions[1].errors.size());
  EXPECT_GT(res.mean_csi_rate_hz, 400.0);
}

TEST(ExperimentTest, AccuracyWithinPaperBand) {
  ScenarioConfig cfg = small_config(77);
  cfg.runtime_sessions = 2;
  cfg.runtime_duration_s = 25.0;
  ExperimentRunner runner(cfg);
  const ExperimentResult res = runner.run();
  // Headline reproduction: median angular error in the paper's 4-10 deg
  // band (we allow a little slack for the short test run).
  EXPECT_LT(res.errors.median_deg(), 12.0);
  EXPECT_GT(res.errors.size(), 50u);
}

TEST(ExperimentTest, InterferenceLowersSamplingRate) {
  ScenarioConfig clean = small_config();
  ScenarioConfig busy = small_config();
  busy.scheduler.load = wifi::ChannelLoad::kInterfering;
  ExperimentRunner clean_runner(clean);
  ExperimentRunner busy_runner(busy);
  const core::CsiProfile p1 = clean_runner.build_profile();
  const core::CsiProfile p2 = busy_runner.build_profile();
  const SessionResult rc = clean_runner.run_session(p1, 0);
  const SessionResult rb = busy_runner.run_session(p2, 0);
  EXPECT_GT(rc.csi_rate_hz, rb.csi_rate_hz + 50.0);
  EXPECT_GT(rb.max_gap_s, rc.max_gap_s);
}

TEST(ExperimentTest, BaselineCollectorsFill) {
  ScenarioConfig cfg = small_config();
  cfg.collect_naive_baseline = true;
  cfg.collect_camera_baseline = true;
  ExperimentRunner runner(cfg);
  const core::CsiProfile profile = runner.build_profile();
  const SessionResult r = runner.run_session(profile, 0);
  EXPECT_FALSE(r.naive_errors.empty());
  EXPECT_FALSE(r.camera_errors.empty());
}

TEST(ExperimentTest, PredictionHorizonFillsForecastErrors) {
  ScenarioConfig cfg = small_config();
  cfg.prediction_horizon_s = 0.2;
  ExperimentRunner runner(cfg);
  const core::CsiProfile profile = runner.build_profile();
  const SessionResult r = runner.run_session(profile, 0);
  EXPECT_FALSE(r.errors.empty());
}

}  // namespace
}  // namespace vihot::sim
