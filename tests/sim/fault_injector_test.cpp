// FaultInjector tests: deterministic transport faults over captured
// streams, with the report accounting for every sample.
#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "engine/ingest.h"

namespace vihot::sim {
namespace {

std::vector<wifi::CsiMeasurement> clean_csi(std::size_t n,
                                            double dt = 0.004) {
  std::vector<wifi::CsiMeasurement> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k].t = static_cast<double>(k) * dt;
    out[k].h[0].assign(4, std::polar(1.0, 0.3));
    out[k].h[1].assign(4, {1.0, 0.0});
  }
  return out;
}

std::vector<imu::ImuSample> clean_imu(std::size_t n, double dt = 0.01) {
  std::vector<imu::ImuSample> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k].t = static_cast<double>(k) * dt;
  }
  return out;
}

TEST(FaultInjectorTest, DisabledPassesStreamsThroughUntouched) {
  FaultConfig config;  // enabled defaults to false
  FaultInjector injector(config, util::Rng(7));
  const auto in = clean_csi(200);
  const auto out = injector.corrupt(in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    EXPECT_EQ(out[k].t, in[k].t);
  }
  EXPECT_EQ(injector.report().delivered, 0u);
}

TEST(FaultInjectorTest, DeterministicForTheSameSeed) {
  FaultConfig config;
  config.enabled = true;
  FaultInjector a(config, util::Rng(1234));
  FaultInjector b(config, util::Rng(1234));
  const auto out_a = a.corrupt(clean_csi(2000));
  const auto out_b = b.corrupt(clean_csi(2000));
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t k = 0; k < out_a.size(); ++k) {
    // NaN != NaN, so compare bit-level semantics via isnan.
    if (std::isnan(out_a[k].t)) {
      EXPECT_TRUE(std::isnan(out_b[k].t));
    } else {
      EXPECT_EQ(out_a[k].t, out_b[k].t);
    }
  }
  EXPECT_EQ(a.report().dropped, b.report().dropped);
  EXPECT_EQ(a.report().corrupted, b.report().corrupted);
}

TEST(FaultInjectorTest, ReportAccountsForEverySample) {
  FaultConfig config;
  config.enabled = true;
  config.drop_prob = 0.1;
  FaultInjector injector(config, util::Rng(42));
  const std::size_t n = 3000;
  const auto out = injector.corrupt(clean_csi(n));
  const FaultInjector::Report& r = injector.report();
  EXPECT_EQ(r.delivered, out.size());
  EXPECT_EQ(r.delivered + r.total_dropped(), n);
  EXPECT_GT(r.dropped, 0u);  // 10% of 3000 cannot round to zero
}

TEST(FaultInjectorTest, NanInjectionPoisonsSamplesTheGuardCatches) {
  FaultConfig config;
  config.enabled = true;
  config.drop_prob = 0.0;
  config.burst_rate_hz = 0.0;
  config.reorder_prob = 0.0;
  config.jitter_std_s = 0.0;
  config.nan_prob = 1.0;
  FaultInjector injector(config, util::Rng(9));
  const auto csi = injector.corrupt(clean_csi(100));
  ASSERT_EQ(csi.size(), 100u);
  for (const wifi::CsiMeasurement& m : csi) {
    EXPECT_FALSE(engine::finite_sample(m));
  }
  const auto imu = injector.corrupt(clean_imu(100));
  for (const imu::ImuSample& s : imu) {
    EXPECT_FALSE(engine::finite_sample(s));
  }
  EXPECT_EQ(injector.report().corrupted, 200u);
}

TEST(FaultInjectorTest, ReorderingDeliversSamplesOutOfOrder) {
  FaultConfig config;
  config.enabled = true;
  config.drop_prob = 0.0;
  config.burst_rate_hz = 0.0;
  config.jitter_std_s = 0.0;
  config.nan_prob = 0.0;
  config.reorder_prob = 0.1;
  config.reorder_delay_s = 0.05;  // >> the 4 ms sample spacing
  FaultInjector injector(config, util::Rng(77));
  const auto out = injector.corrupt(clean_csi(2000));
  ASSERT_EQ(out.size(), 2000u);  // reordering never loses samples
  EXPECT_GT(injector.report().reordered, 0u);
  std::size_t inversions = 0;
  for (std::size_t k = 1; k < out.size(); ++k) {
    if (out[k].t < out[k - 1].t) ++inversions;
  }
  EXPECT_GT(inversions, 0u);
}

TEST(FaultInjectorTest, BurstsCarveContiguousGaps) {
  FaultConfig config;
  config.enabled = true;
  config.drop_prob = 0.0;
  config.reorder_prob = 0.0;
  config.jitter_std_s = 0.0;
  config.nan_prob = 0.0;
  config.burst_rate_hz = 0.5;
  config.burst_duration_s = 1.0;
  FaultInjector injector(config, util::Rng(5));
  // 20 s at 250 Hz: ~10 expected one-second outages.
  const auto out = injector.corrupt(clean_csi(5000));
  EXPECT_GT(injector.report().burst_dropped, 0u);
  double max_gap = 0.0;
  for (std::size_t k = 1; k < out.size(); ++k) {
    max_gap = std::max(max_gap, out[k].t - out[k - 1].t);
  }
  // At least one surviving gap spans (most of) a burst window — the
  // feed hole the tracker's stale-window guard exists for.
  EXPECT_GT(max_gap, 0.9 * config.burst_duration_s);
}

TEST(FaultInjectorTest, JitterPerturbsTimestampsButKeepsPayload) {
  FaultConfig config;
  config.enabled = true;
  config.drop_prob = 0.0;
  config.burst_rate_hz = 0.0;
  config.reorder_prob = 0.0;
  config.nan_prob = 0.0;
  config.jitter_std_s = 0.003;
  FaultInjector injector(config, util::Rng(3));
  const auto in = clean_csi(1000);
  const auto out = injector.corrupt(in);
  ASSERT_EQ(out.size(), in.size());
  double max_shift = 0.0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    max_shift = std::max(max_shift, std::abs(out[k].t - in[k].t));
    EXPECT_TRUE(engine::finite_sample(out[k]));
  }
  EXPECT_GT(max_shift, 0.0);
  EXPECT_LT(max_shift, 0.05);  // gaussian tails, not corruption
}

}  // namespace
}  // namespace vihot::sim
