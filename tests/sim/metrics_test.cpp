#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "util/angle.h"

namespace vihot::sim {
namespace {

TEST(MetricsTest, AngularErrorInDegrees) {
  EXPECT_NEAR(angular_error_deg(0.0, util::deg_to_rad(10.0)), 10.0, 1e-9);
  EXPECT_NEAR(angular_error_deg(util::deg_to_rad(-5.0),
                                util::deg_to_rad(5.0)),
              10.0, 1e-9);
}

TEST(MetricsTest, AngularErrorWrapsCorrectly) {
  // 175 deg vs -175 deg is 10 deg apart, not 350.
  EXPECT_NEAR(angular_error_deg(util::deg_to_rad(175.0),
                                util::deg_to_rad(-175.0)),
              10.0, 1e-9);
}

TEST(MetricsTest, CollectorStatistics) {
  ErrorCollector c;
  EXPECT_TRUE(c.empty());
  for (double e : {1.0, 2.0, 3.0, 4.0, 100.0}) c.add(e);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_DOUBLE_EQ(c.median_deg(), 3.0);
  EXPECT_DOUBLE_EQ(c.max_deg(), 100.0);
  EXPECT_DOUBLE_EQ(c.mean_deg(), 22.0);
  EXPECT_DOUBLE_EQ(c.percentile_deg(50.0), 3.0);
}

TEST(MetricsTest, MergeCombinesSamples) {
  ErrorCollector a;
  a.add(1.0);
  ErrorCollector b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.median_deg(), 3.0);
}

TEST(MetricsTest, CdfMatchesSamples) {
  ErrorCollector c;
  for (int i = 1; i <= 10; ++i) c.add(static_cast<double>(i));
  const util::EmpiricalCdf cdf = c.cdf();
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.max(), 10.0);
}

TEST(MetricsTest, SummaryAgrees) {
  ErrorCollector c;
  for (int i = 0; i < 100; ++i) c.add(static_cast<double>(i % 10));
  const util::Summary s = c.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, c.mean_deg());
  EXPECT_DOUBLE_EQ(s.median, c.median_deg());
}

}  // namespace
}  // namespace vihot::sim
