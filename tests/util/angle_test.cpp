#include "util/angle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vihot::util {
namespace {

TEST(AngleTest, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi), 180.0);
  for (double d = -720.0; d <= 720.0; d += 37.5) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-12);
  }
}

TEST(AngleTest, WrapPiPrincipalInterval) {
  EXPECT_NEAR(wrap_pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(5.0 * kTwoPi + 1.0), 1.0, 1e-9);
  EXPECT_NEAR(wrap_pi(-7.0 * kTwoPi - 2.0), -2.0, 1e-9);
}

TEST(AngleTest, WrapPiBoundaryIsPlusPi) {
  // (-pi, pi]: exactly +pi stays, exactly -pi maps to +pi.
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi), kPi, 1e-12);
}

TEST(AngleTest, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 0.5), 0.5, 1e-12);
  for (double a = -20.0; a < 20.0; a += 0.7) {
    const double w = wrap_two_pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
    EXPECT_NEAR(std::remainder(w - a, kTwoPi), 0.0, 1e-9);
  }
}

TEST(AngleTest, AngularDiffShortestPath) {
  EXPECT_NEAR(angular_diff(0.1, -0.1), 0.2, 1e-12);
  // Crossing the wrap boundary: 175 deg to -175 deg is -10 deg apart.
  EXPECT_NEAR(angular_diff(deg_to_rad(175.0), deg_to_rad(-175.0)),
              deg_to_rad(-10.0), 1e-9);
  EXPECT_NEAR(angular_diff(deg_to_rad(-175.0), deg_to_rad(175.0)),
              deg_to_rad(10.0), 1e-9);
}

TEST(AngleTest, AngularDistSymmetricNonNegative) {
  for (double a = -3.0; a <= 3.0; a += 0.5) {
    for (double b = -3.0; b <= 3.0; b += 0.5) {
      EXPECT_GE(angular_dist(a, b), 0.0);
      EXPECT_NEAR(angular_dist(a, b), angular_dist(b, a), 1e-12);
      EXPECT_LE(angular_dist(a, b), kPi + 1e-12);
    }
  }
}

TEST(AngleTest, UnwrapRemovesJumps) {
  // A linear ramp wrapped into (-pi, pi] must unwrap back to the ramp.
  std::vector<double> truth;
  std::vector<double> wrapped;
  for (int i = 0; i < 200; ++i) {
    const double v = 0.1 * i;
    truth.push_back(v);
    wrapped.push_back(wrap_pi(v));
  }
  unwrap_in_place(wrapped);
  // Unwrap is relative to the first sample; the ramp starts at 0, so the
  // result matches absolutely.
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(wrapped[i], truth[i], 1e-9) << "at " << i;
  }
}

TEST(AngleTest, UnwrapNegativeRamp) {
  std::vector<double> wrapped;
  for (int i = 0; i < 150; ++i) wrapped.push_back(wrap_pi(-0.2 * i));
  unwrap_in_place(wrapped);
  for (std::size_t i = 1; i < wrapped.size(); ++i) {
    EXPECT_NEAR(wrapped[i] - wrapped[i - 1], -0.2, 1e-9);
  }
}

TEST(AngleTest, UnwrappedCopyLeavesInputIntact) {
  const std::vector<double> in = {3.0, -3.0, 3.0};
  const std::vector<double> out = unwrapped(in);
  EXPECT_EQ(in[1], -3.0);
  // -3.0 is closer to 3.0 via the wrap (+2pi).
  EXPECT_NEAR(out[1], -3.0 + kTwoPi, 1e-12);
}

TEST(AngleTest, UnwrapShortInputsNoop) {
  std::vector<double> one = {1.5};
  unwrap_in_place(one);
  EXPECT_DOUBLE_EQ(one[0], 1.5);
  std::vector<double> empty;
  unwrap_in_place(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(AngleTest, CircularMeanHandlesWrap) {
  // Mean of 179 deg and -179 deg is 180 deg, not 0.
  const std::vector<double> xs = {deg_to_rad(179.0), deg_to_rad(-179.0)};
  EXPECT_NEAR(std::abs(circular_mean(xs)), kPi, 1e-6);
}

TEST(AngleTest, CircularMeanOfClusteredAngles) {
  const std::vector<double> xs = {0.9, 1.0, 1.1};
  EXPECT_NEAR(circular_mean(xs), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(circular_mean({}), 0.0);
}

// Property sweep: wrap_pi is idempotent and 2*pi-periodic.
class WrapPiProperty : public ::testing::TestWithParam<double> {};

TEST_P(WrapPiProperty, IdempotentAndPeriodic) {
  const double a = GetParam();
  const double w = wrap_pi(a);
  EXPECT_GT(w, -kPi - 1e-12);
  EXPECT_LE(w, kPi + 1e-12);
  EXPECT_NEAR(wrap_pi(w), w, 1e-12);
  EXPECT_NEAR(wrap_pi(a + kTwoPi), w, 1e-9);
  EXPECT_NEAR(wrap_pi(a - kTwoPi), w, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WrapPiProperty,
                         ::testing::Values(-15.0, -6.3, -3.2, -1.0, -1e-9,
                                           0.0, 0.5, 3.1, 3.2, 6.2, 6.4,
                                           12.6, 100.0));

}  // namespace
}  // namespace vihot::util
