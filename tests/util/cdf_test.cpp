#include "util/cdf.h"

#include <gtest/gtest.h>

#include <vector>

namespace vihot::util {
namespace {

TEST(CdfTest, EmptyCdf) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(CdfTest, AtStepFunction) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(CdfTest, QuantileInverse) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 30.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 10.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 50.0);
}

TEST(CdfTest, UnsortedInputIsSorted) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.sorted().front(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.sorted().back(), 5.0);
}

TEST(CdfTest, CurveSpansRequestedRange) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EmpiricalCdf cdf(xs);
  const auto curve = cdf.curve(6.0, 13);
  ASSERT_EQ(curve.size(), 13u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 6.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  // CDF values along the curve are non-decreasing.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(CdfTest, CurveZeroPoints) {
  EmpiricalCdf cdf(std::vector<double>{1.0});
  EXPECT_TRUE(cdf.curve(5.0, 0).empty());
}

TEST(CdfTest, DescribeMentionsStatistics) {
  EmpiricalCdf cdf(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  const std::string s = describe(cdf);
  EXPECT_NE(s.find("median="), std::string::npos);
  EXPECT_NE(s.find("n=4"), std::string::npos);
}

// Property: quantile(at(x)) <= x for sample points.
class CdfRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CdfRoundTrip, QuantileAtIsConsistent) {
  std::vector<double> xs;
  unsigned state = static_cast<unsigned>(GetParam()) * 7919u + 3u;
  for (int i = 0; i < 50; ++i) {
    state = state * 1664525u + 1013904223u;
    xs.push_back(static_cast<double>(state % 10000u) / 100.0);
  }
  EmpiricalCdf cdf(xs);
  for (const double x : xs) {
    // The smallest sample reaching the same cumulative probability cannot
    // exceed the sample itself.
    EXPECT_LE(cdf.quantile(cdf.at(x)), x + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfRoundTrip, ::testing::Range(1, 7));

}  // namespace
}  // namespace vihot::util
