#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace vihot::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(m, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ForkedStreamsAreIndependentByLabel) {
  Rng parent1(99);
  Rng parent2(99);
  Rng a = parent1.fork("alpha");
  Rng b = parent2.fork("beta");
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(5);
  Rng p2(5);
  Rng a = p1.fork("x");
  Rng b = p2.fork("x");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

}  // namespace
}  // namespace vihot::util
