#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vihot::util {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(StatsTest, StddevKnownValues) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 62.5), 35.0);  // halfway 30..40
}

TEST(StatsTest, PercentileClampsOutOfRange) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 2.0);
}

TEST(StatsTest, MinMaxRms) {
  const std::vector<double> xs = {-3.0, 4.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -3.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
  EXPECT_DOUBLE_EQ(rms(xs), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(StatsTest, SummarizeConsistentWithPieces) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_DOUBLE_EQ(s.median, median(xs));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p90, percentile(xs, 90.0));
  EXPECT_DOUBLE_EQ(s.p99, percentile(xs, 99.0));
}

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = ys;
  for (double& v : neg) v = -v;
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateInputs) {
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{1.0, 2.0},
                           std::vector<double>{1.0}),
                   0.0);  // length mismatch
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{3.0, 3.0},
                           std::vector<double>{1.0, 2.0}),
                   0.0);  // constant side
}

// Property: percentile is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  std::vector<double> xs;
  // Deterministic pseudo-random-ish values.
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
  for (int i = 0; i < 64; ++i) {
    state = state * 1664525u + 1013904223u;
    xs.push_back(static_cast<double>(state % 1000u) / 10.0);
  }
  double prev = percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev - 1e-12) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Range(1, 9));

}  // namespace
}  // namespace vihot::util
