#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vihot::util {
namespace {

TEST(TableTest, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, PrintCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(TableTest, BannerContainsTitle) {
  std::ostringstream os;
  banner(os, "Fig. 10a");
  EXPECT_NE(os.str().find("Fig. 10a"), std::string::npos);
}

TEST(TableTest, CdfAsciiRendersBars) {
  std::ostringstream os;
  print_cdf_ascii(os, {{0.0, 0.0}, {5.0, 0.5}, {10.0, 1.0}}, "deg", 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("#####....."), std::string::npos);  // 0.5 bar
  EXPECT_NE(out.find("##########"), std::string::npos);  // 1.0 bar
}

}  // namespace
}  // namespace vihot::util
