#include "util/time_series.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace vihot::util {
namespace {

TimeSeries ramp(double t0, double dt, int n, double v0, double dv) {
  TimeSeries ts;
  for (int i = 0; i < n; ++i) {
    ts.push(t0 + dt * i, v0 + dv * i);
  }
  return ts;
}

TEST(TimeSeriesTest, PushAndAccess) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.push(1.0, 10.0);
  ts.push(2.0, 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.front().value, 10.0);
  EXPECT_DOUBLE_EQ(ts.back().t, 2.0);
  EXPECT_DOUBLE_EQ(ts[1].value, 20.0);
}

TEST(TimeSeriesTest, DurationNeedsTwoSamples) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.duration(), 0.0);
  ts.push(1.0, 0.0);
  EXPECT_DOUBLE_EQ(ts.duration(), 0.0);
  ts.push(4.0, 0.0);
  EXPECT_DOUBLE_EQ(ts.duration(), 3.0);
}

TEST(TimeSeriesTest, InterpolateLinear) {
  const TimeSeries ts = ramp(0.0, 1.0, 5, 0.0, 10.0);  // v = 10*t
  EXPECT_DOUBLE_EQ(ts.interpolate(2.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(2.5), 25.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(-1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(ts.interpolate(99.0), 40.0);  // clamped
}

TEST(TimeSeriesTest, InterpolateHandlesDuplicateTimestamps) {
  TimeSeries ts;
  ts.push(0.0, 1.0);
  ts.push(1.0, 2.0);
  ts.push(1.0, 5.0);
  ts.push(2.0, 6.0);
  // At the duplicated instant any of the two values is acceptable; the
  // call must not divide by zero.
  const double v = ts.interpolate(1.0);
  EXPECT_GE(v, 2.0);
  EXPECT_LE(v, 5.0);
}

TEST(TimeSeriesTest, SliceInclusive) {
  const TimeSeries ts = ramp(0.0, 1.0, 10, 0.0, 1.0);
  const TimeSeries s = ts.slice(2.0, 5.0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.front().t, 2.0);
  EXPECT_DOUBLE_EQ(s.back().t, 5.0);
}

TEST(TimeSeriesTest, SliceEmptyRange) {
  const TimeSeries ts = ramp(0.0, 1.0, 5, 0.0, 1.0);
  EXPECT_TRUE(ts.slice(10.0, 20.0).empty());
  EXPECT_TRUE(ts.slice(3.0, 2.0).empty());
}

TEST(TimeSeriesTest, LowerBound) {
  const TimeSeries ts = ramp(0.0, 1.0, 5, 0.0, 1.0);
  EXPECT_EQ(ts.lower_bound(-1.0), 0u);
  EXPECT_EQ(ts.lower_bound(2.0), 2u);
  EXPECT_EQ(ts.lower_bound(2.5), 3u);
  EXPECT_EQ(ts.lower_bound(10.0), 5u);
}

TEST(TimeSeriesTest, MinMaxInRange) {
  // v = 3 - t for t in 0..6, then rising again: min sits mid-series.
  TimeSeries ts;
  for (int i = 0; i <= 6; ++i) ts.push(i, std::abs(3.0 - i));
  const auto mm = ts.minmax_in(1.0, 5.0);
  ASSERT_TRUE(mm.has_value());
  EXPECT_DOUBLE_EQ(mm->min, 0.0);  // at t = 3
  EXPECT_DOUBLE_EQ(mm->max, 2.0);  // at t = 1 and t = 5
  EXPECT_DOUBLE_EQ(mm->spread(), 2.0);
}

TEST(TimeSeriesTest, MinMaxInBoundsInclusive) {
  const TimeSeries ts = ramp(0.0, 1.0, 5, 0.0, 10.0);  // v = 10*t
  const auto mm = ts.minmax_in(1.0, 3.0);
  ASSERT_TRUE(mm.has_value());
  EXPECT_DOUBLE_EQ(mm->min, 10.0);
  EXPECT_DOUBLE_EQ(mm->max, 30.0);
}

TEST(TimeSeriesTest, MinMaxInSingleSample) {
  const TimeSeries ts = ramp(0.0, 1.0, 5, 0.0, 10.0);
  const auto mm = ts.minmax_in(1.9, 2.1);
  ASSERT_TRUE(mm.has_value());
  EXPECT_DOUBLE_EQ(mm->min, 20.0);
  EXPECT_DOUBLE_EQ(mm->max, 20.0);
  EXPECT_DOUBLE_EQ(mm->spread(), 0.0);
}

TEST(TimeSeriesTest, MinMaxInEmptyRange) {
  const TimeSeries ts = ramp(0.0, 1.0, 5, 0.0, 1.0);
  EXPECT_FALSE(ts.minmax_in(10.0, 20.0).has_value());
  EXPECT_FALSE(ts.minmax_in(3.0, 2.0).has_value());
  EXPECT_FALSE(ts.minmax_in(1.2, 1.8).has_value());  // between samples
  EXPECT_FALSE(TimeSeries{}.minmax_in(0.0, 1.0).has_value());
}

TEST(TimeSeriesTest, MinMaxInMatchesSliceScan) {
  TimeSeries ts;
  double v = 0.25;
  for (int i = 0; i < 200; ++i) {
    v = 3.9 * v * (1.0 - v);  // deterministic chaotic values
    ts.push(0.01 * i, v);
  }
  const TimeSeries ref = ts.slice(0.5, 1.5);
  const auto mm = ts.minmax_in(0.5, 1.5);
  ASSERT_TRUE(mm.has_value());
  double lo = ref[0].value;
  double hi = ref[0].value;
  for (const auto& s : ref.samples()) {
    lo = std::min(lo, s.value);
    hi = std::max(hi, s.value);
  }
  EXPECT_DOUBLE_EQ(mm->min, lo);
  EXPECT_DOUBLE_EQ(mm->max, hi);
}

TEST(TimeSeriesTest, ColumnsSplit) {
  const TimeSeries ts = ramp(1.0, 0.5, 3, 7.0, 1.0);
  const auto t = ts.times();
  const auto v = ts.values();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[1], 1.5);
  EXPECT_DOUBLE_EQ(v[2], 9.0);
}

TEST(UniformSeriesTest, TimeAtAndEnd) {
  UniformSeries u;
  u.t0 = 1.0;
  u.dt = 0.5;
  u.values = {0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(u.time_at(2), 2.0);
  EXPECT_DOUBLE_EQ(u.end_time(), 2.0);
  EXPECT_EQ(u.size(), 3u);
}

TEST(UniformSeriesTest, IndexOfClamped) {
  UniformSeries u;
  u.t0 = 0.0;
  u.dt = 1.0;
  u.values = {0.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(u.index_of(-5.0), 0u);
  EXPECT_EQ(u.index_of(1.4), 1u);
  EXPECT_EQ(u.index_of(1.6), 2u);
  EXPECT_EQ(u.index_of(99.0), 3u);
}

TEST(UniformSeriesTest, InterpolateMatchesLinear) {
  UniformSeries u;
  u.t0 = 0.0;
  u.dt = 2.0;
  u.values = {0.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(u.interpolate(1.0), 5.0);
  EXPECT_DOUBLE_EQ(u.interpolate(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(u.interpolate(9.0), 20.0);
}

TEST(UniformSeriesTest, SingleSample) {
  UniformSeries u;
  u.t0 = 3.0;
  u.dt = 1.0;
  u.values = {7.0};
  EXPECT_DOUBLE_EQ(u.interpolate(100.0), 7.0);
  EXPECT_DOUBLE_EQ(u.end_time(), 3.0);
}

}  // namespace
}  // namespace vihot::util
