#include "wifi/link.h"

#include <gtest/gtest.h>

#include "channel/cabin.h"
#include "core/sanitizer.h"

namespace vihot::wifi {
namespace {

class LinkTest : public ::testing::Test {
 protected:
  channel::CabinScene scene_ = channel::make_cabin_scene();
  channel::ChannelModel model_{scene_, channel::SubcarrierGrid{},
                               channel::HeadScatterModel{}};

  channel::CabinState state(double theta) const {
    channel::CabinState st;
    st.head.position = scene_.driver_head_center;
    st.head.theta = theta;
    return st;
  }
};

TEST_F(LinkTest, CaptureProducesTimestampedStream) {
  WifiLink link(model_, NoiseConfig{}, SchedulerConfig{}, util::Rng(1));
  const auto capture =
      link.capture(0.0, 2.0, [&](double) { return state(0.0); });
  ASSERT_GT(capture.size(), 700u);  // ~500 Hz for 2 s
  for (std::size_t i = 1; i < capture.size(); ++i) {
    EXPECT_GT(capture[i].t, capture[i - 1].t);
  }
  EXPECT_EQ(capture.front().num_subcarriers(), 30u);
}

TEST_F(LinkTest, MeasurementsDependOnState) {
  WifiLink link(model_, NoiseConfig{}, SchedulerConfig{}, util::Rng(2));
  const CsiMeasurement a = link.measure(0.0, state(0.0));
  const CsiMeasurement b = link.measure(0.002, state(0.8));
  // The sanitized phase (CFO-free) must differ between orientations.
  const core::CsiSanitizer san;
  EXPECT_GT(std::abs(san.phase(a) - san.phase(b)), 0.05);
}

TEST_F(LinkTest, SanitizedPhaseIsStableForStaticScene) {
  // Frames of an unchanged cabin: raw phases jump (CFO), sanitized
  // phases agree to within thermal noise.
  WifiLink link(model_, NoiseConfig{}, SchedulerConfig{}, util::Rng(3));
  const core::CsiSanitizer san;
  const CsiMeasurement first = link.measure(0.0, state(0.1));
  const double ref = san.phase(first);
  for (int i = 1; i < 50; ++i) {
    const CsiMeasurement m = link.measure(0.002 * i, state(0.1));
    EXPECT_NEAR(san.phase(m), ref, 0.05);
  }
}

TEST_F(LinkTest, StateCallbackSeesMonotoneTime) {
  WifiLink link(model_, NoiseConfig{}, SchedulerConfig{}, util::Rng(4));
  double last_t = -1.0;
  (void)link.capture(0.0, 1.0, [&](double t) {
    EXPECT_GT(t, last_t);
    last_t = t;
    return state(0.0);
  });
  EXPECT_GT(last_t, 0.9);
}

}  // namespace
}  // namespace vihot::wifi
