#include "wifi/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/cabin.h"
#include "util/angle.h"

namespace vihot::wifi {
namespace {

channel::CsiMatrix clean_csi() {
  const channel::CabinScene scene = channel::make_cabin_scene();
  const channel::ChannelModel model(scene, channel::SubcarrierGrid{},
                                    channel::HeadScatterModel{});
  channel::CabinState st;
  st.head.position = scene.driver_head_center;
  return model.csi(st);
}

TEST(NoiseTest, RawPhaseIsScrambledByCfo) {
  const channel::SubcarrierGrid grid;
  const channel::CsiMatrix clean = clean_csi();
  HardwareNoiseModel noise(NoiseConfig{}, util::Rng(3));
  // The same clean channel measured in two frames gets different raw
  // phases (beta changes per frame) — raw CSI phase is unusable.
  const CsiMeasurement m1 = noise.corrupt(0.0, clean, grid);
  const CsiMeasurement m2 = noise.corrupt(0.002, clean, grid);
  const double d01 = util::angular_dist(m1.phase(0, 15), m2.phase(0, 15));
  EXPECT_GT(d01, 1e-3);
}

TEST(NoiseTest, CfoIdenticalAcrossAntennas) {
  // The whole premise of Eq. (3): both RX chains share beta and dt, so
  // the inter-antenna phase DIFFERENCE of one frame is reproducible
  // across frames up to thermal noise.
  const channel::SubcarrierGrid grid;
  const channel::CsiMatrix clean = clean_csi();
  NoiseConfig cfg;
  cfg.thermal_std = 0.0;  // isolate CFO/SFO
  HardwareNoiseModel noise(cfg, util::Rng(3));
  const CsiMeasurement m1 = noise.corrupt(0.0, clean, grid);
  const CsiMeasurement m2 = noise.corrupt(0.002, clean, grid);
  const double diff1 =
      std::arg(m1.h[0][10] * std::conj(m1.h[1][10]));
  const double diff2 =
      std::arg(m2.h[0][10] * std::conj(m2.h[1][10]));
  EXPECT_NEAR(diff1, diff2, 1e-9);
}

TEST(NoiseTest, SfoGrowsWithSubcarrierIndex) {
  const channel::SubcarrierGrid grid;
  // A flat unit channel isolates the SFO ramp.
  channel::CsiMatrix flat;
  for (auto& row : flat.h) row.assign(grid.size(), {1.0, 0.0});
  NoiseConfig cfg;
  cfg.cfo_enabled = false;
  cfg.thermal_std = 0.0;
  cfg.sfo_walk_std = 0.0;  // hold dt at its initial value...
  HardwareNoiseModel noise(cfg, util::Rng(5));
  // ...which is 0, so force a lag by walking once with a big step.
  NoiseConfig cfg2 = cfg;
  cfg2.sfo_walk_std = 40e-9;
  HardwareNoiseModel noise2(cfg2, util::Rng(5));
  const CsiMeasurement m = noise2.corrupt(0.0, flat, grid);
  // Phase error is antisymmetric in the signed subcarrier index: edges
  // rotate in opposite directions, center barely moves.
  const double lo = m.phase(0, 0);
  const double mid = m.phase(0, grid.size() / 2);
  const double hi = m.phase(0, grid.size() - 1);
  EXPECT_LT(std::abs(mid), std::abs(lo) + std::abs(hi));
  EXPECT_LT(lo * hi, 0.0);  // opposite signs
}

TEST(NoiseTest, ThermalNoisePerturbsMagnitude) {
  const channel::SubcarrierGrid grid;
  channel::CsiMatrix flat;
  for (auto& row : flat.h) row.assign(grid.size(), {1.0, 0.0});
  NoiseConfig cfg;
  cfg.cfo_enabled = false;
  cfg.sfo_enabled = false;
  cfg.thermal_std = 0.05;
  HardwareNoiseModel noise(cfg, util::Rng(7));
  const CsiMeasurement m = noise.corrupt(0.0, flat, grid);
  double dev = 0.0;
  for (std::size_t f = 0; f < grid.size(); ++f) {
    dev += std::abs(std::abs(m.h[0][f]) - 1.0);
  }
  EXPECT_GT(dev / static_cast<double>(grid.size()), 0.005);
}

TEST(NoiseTest, DisabledNoisePassesThrough) {
  const channel::SubcarrierGrid grid;
  const channel::CsiMatrix clean = clean_csi();
  NoiseConfig cfg;
  cfg.cfo_enabled = false;
  cfg.sfo_enabled = false;
  cfg.thermal_std = 0.0;
  HardwareNoiseModel noise(cfg, util::Rng(9));
  const CsiMeasurement m = noise.corrupt(1.5, clean, grid);
  EXPECT_DOUBLE_EQ(m.t, 1.5);
  for (std::size_t f = 0; f < grid.size(); ++f) {
    EXPECT_NEAR(std::abs(m.h[0][f] - clean.h[0][f]), 0.0, 1e-12);
  }
}

TEST(NoiseTest, SfoLagStaysBounded) {
  const channel::SubcarrierGrid grid;
  channel::CsiMatrix flat;
  for (auto& row : flat.h) row.assign(grid.size(), {1.0, 0.0});
  NoiseConfig cfg;
  cfg.cfo_enabled = false;
  cfg.thermal_std = 0.0;
  cfg.sfo_walk_std = 30e-9;
  cfg.sfo_max_lag = 60e-9;
  HardwareNoiseModel noise(cfg, util::Rng(11));
  // After many packets the edge-subcarrier phase error must stay bounded
  // by the reflected walk (|dt| <= max_lag).
  const double bound = util::kTwoPi * 28.0 * (20e6 / 64.0) * 60e-9;
  for (int i = 0; i < 2000; ++i) {
    const CsiMeasurement m = noise.corrupt(0.002 * i, flat, grid);
    EXPECT_LE(std::abs(m.phase(0, grid.size() - 1)), bound * 1.05);
  }
}

}  // namespace
}  // namespace vihot::wifi
