// These tests are the first-principles justification of Eq. (2) and the
// Eq. (3) sanitizer: the phase-corruption structure ViHOT assumes is shown
// to EMERGE from a symbol-level OFDM link with genuine time-domain CFO
// and a genuine fractional sampling delay.

#include "wifi/ofdm_phy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angle.h"

namespace vihot::wifi {
namespace {

class OfdmPhyTest : public ::testing::Test {
 protected:
  OfdmPhy phy_{};
  util::Rng rng_{3};

  ChannelResponse measure(const ChannelResponse& channel,
                          const PhyImpairments& imp) {
    const auto tx = phy_.transmit_ltf();
    const auto rx = phy_.through_channel(tx, channel, imp, rng_);
    return phy_.estimate_csi(rx);
  }
};

TEST_F(OfdmPhyTest, CleanChannelEstimatesExactly) {
  ChannelResponse truth;
  // A mildly frequency-selective two-tap-like channel.
  for (int k = -ChannelResponse::kOccupied; k <= ChannelResponse::kOccupied;
       ++k) {
    truth.at(k) = std::polar(1.0 + 0.1 * std::sin(0.2 * k), 0.05 * k);
  }
  const ChannelResponse est = measure(truth, PhyImpairments{});
  for (int k = -ChannelResponse::kOccupied; k <= ChannelResponse::kOccupied;
       ++k) {
    if (k == 0) continue;  // DC carries no LTF energy
    EXPECT_NEAR(std::abs(est.at(k) - truth.at(k)), 0.0, 1e-9) << "k=" << k;
  }
}

TEST_F(OfdmPhyTest, PhaseOffsetAppearsAsCommonBeta) {
  // Eq. (2): the oscillator phase beta(t) is a COMMON additive phase on
  // every subcarrier of a frame.
  PhyImpairments imp;
  imp.phase_offset_rad = 0.8;
  const ChannelResponse est = measure(ChannelResponse{}, imp);
  for (int k = -ChannelResponse::kOccupied; k <= ChannelResponse::kOccupied;
       ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(util::wrap_pi(std::arg(est.at(k)) - 0.8), 0.0, 0.02)
        << "k=" << k;
  }
}

TEST_F(OfdmPhyTest, CfoAddsNearCommonRotation) {
  // A residual CFO over one OFDM symbol rotates all subcarriers by
  // (nearly) the same angle — it acts like a per-frame beta, which is why
  // a per-frame random beta models it (wifi/noise.h).
  PhyImpairments imp;
  // 20 kHz of residual CFO rotates the carrier by ~0.3 rad by the middle
  // of the 80-sample symbol (which is the effective rotation the CSI
  // estimate inherits), while staying at ~6% of the subcarrier spacing
  // so inter-carrier interference remains second-order.
  imp.cfo_hz = 20e3;
  const ChannelResponse est = measure(ChannelResponse{}, imp);
  const double ref = std::arg(est.at(1));
  EXPECT_GT(std::abs(ref), 0.1);  // a real rotation happened
  for (int k = -ChannelResponse::kOccupied; k <= ChannelResponse::kOccupied;
       ++k) {
    if (k == 0) continue;
    // Inter-carrier interference makes it only approximately common.
    EXPECT_NEAR(util::wrap_pi(std::arg(est.at(k)) - ref), 0.0, 0.12)
        << "k=" << k;
  }
}

TEST_F(OfdmPhyTest, SamplingOffsetGivesLinearPhaseRamp) {
  // Eq. (2): the SFO lag dt appears as a phase error 2*pi*(f/N)*dt,
  // LINEAR in the signed subcarrier index. Derived, not assumed.
  PhyImpairments imp;
  imp.sampling_offset_s = 20e-9;
  const ChannelResponse est = measure(ChannelResponse{}, imp);
  const OfdmPhyConfig& cfg = phy_.config();
  const double slope_per_k = -util::kTwoPi * cfg.bandwidth_hz /
                             static_cast<double>(cfg.fft_size) *
                             imp.sampling_offset_s;
  for (int k = -ChannelResponse::kOccupied; k <= ChannelResponse::kOccupied;
       ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::arg(est.at(k)), slope_per_k * k, 1e-6) << "k=" << k;
  }
}

TEST_F(OfdmPhyTest, SharedOscillatorCancelsInAntennaDifference) {
  // The Eq. (3) premise, at the PHY level: two RX chains share beta and
  // dt; per-subcarrier channels differ. The inter-antenna phase
  // difference must equal the channel phase difference, offsets gone.
  ChannelResponse h1;
  ChannelResponse h2;
  for (int k = -ChannelResponse::kOccupied; k <= ChannelResponse::kOccupied;
       ++k) {
    h1.at(k) = std::polar(1.0, 0.03 * k + 0.4);
    h2.at(k) = std::polar(0.8, -0.02 * k);
  }
  PhyImpairments imp;
  imp.phase_offset_rad = 1.1;
  imp.sampling_offset_s = 35e-9;
  const auto tx = phy_.transmit_ltf();
  const auto rx1 = phy_.through_channel(tx, h1, imp, rng_);
  const auto rx2 = phy_.through_channel(tx, h2, imp, rng_);
  const ChannelResponse e1 = phy_.estimate_csi(rx1);
  const ChannelResponse e2 = phy_.estimate_csi(rx2);
  for (int k = -ChannelResponse::kOccupied; k <= ChannelResponse::kOccupied;
       ++k) {
    if (k == 0) continue;
    const double measured_diff =
        std::arg(e1.at(k) * std::conj(e2.at(k)));
    const double true_diff = std::arg(h1.at(k) * std::conj(h2.at(k)));
    EXPECT_NEAR(util::wrap_pi(measured_diff - true_diff), 0.0, 1e-6)
        << "k=" << k;
  }
}

TEST_F(OfdmPhyTest, NoisePerturbsEstimateProportionally) {
  PhyImpairments low;
  low.noise_std = 0.01;
  PhyImpairments high;
  high.noise_std = 0.1;
  double err_low = 0.0;
  double err_high = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const ChannelResponse el = measure(ChannelResponse{}, low);
    const ChannelResponse eh = measure(ChannelResponse{}, high);
    for (int k = 1; k <= ChannelResponse::kOccupied; ++k) {
      err_low += std::abs(el.at(k) - std::complex<double>{1.0, 0.0});
      err_high += std::abs(eh.at(k) - std::complex<double>{1.0, 0.0});
    }
  }
  EXPECT_GT(err_high, 4.0 * err_low);
}

TEST_F(OfdmPhyTest, LtfSymbolHasCyclicPrefix) {
  const auto tx = phy_.transmit_ltf();
  const OfdmPhyConfig& cfg = phy_.config();
  ASSERT_EQ(tx.size(), cfg.cp_len + cfg.fft_size);
  // The CP is a copy of the symbol tail.
  for (std::size_t i = 0; i < cfg.cp_len; ++i) {
    EXPECT_NEAR(std::abs(tx[i] - tx[cfg.fft_size + i]), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace vihot::wifi
