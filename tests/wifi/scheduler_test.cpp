#include "wifi/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace vihot::wifi {
namespace {

TEST(SchedulerTest, CleanChannelRateNear500Hz) {
  PacketScheduler sched(SchedulerConfig{}, util::Rng(1));
  const auto arrivals = sched.arrivals(0.0, 60.0);
  const double rate = static_cast<double>(arrivals.size()) / 60.0;
  EXPECT_GT(rate, 430.0);
  EXPECT_LT(rate, 560.0);
}

TEST(SchedulerTest, InterferenceDropsRateToward400Hz) {
  SchedulerConfig cfg;
  cfg.load = ChannelLoad::kInterfering;
  PacketScheduler sched(cfg, util::Rng(1));
  const auto arrivals = sched.arrivals(0.0, 60.0);
  const double rate = static_cast<double>(arrivals.size()) / 60.0;
  EXPECT_GT(rate, 330.0);
  EXPECT_LT(rate, 450.0);
}

TEST(SchedulerTest, ArrivalsStrictlyIncreasing) {
  PacketScheduler sched(SchedulerConfig{}, util::Rng(2));
  const auto arrivals = sched.arrivals(0.0, 10.0);
  ASSERT_GT(arrivals.size(), 100u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_GE(arrivals.front(), 0.0);
  EXPECT_LT(arrivals.back(), 10.0);
}

TEST(SchedulerTest, IntervalsRespectMinimum) {
  SchedulerConfig cfg;
  PacketScheduler sched(cfg, util::Rng(3));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sched.next_interval(), cfg.min_interval_s);
  }
}

TEST(SchedulerTest, CleanMaxGapBounded) {
  SchedulerConfig cfg;
  PacketScheduler sched(cfg, util::Rng(4));
  double worst = 0.0;
  for (int i = 0; i < 60000; ++i) {
    worst = std::max(worst, sched.next_interval());
  }
  // Sec. 5.3.5: max ~34 ms clean.
  EXPECT_LE(worst, cfg.clean_burst_gap_s + 1e-9);
  EXPECT_GT(worst, 0.01);  // bursts do occur at this sample count
}

TEST(SchedulerTest, InterferingMaxGapLarger) {
  SchedulerConfig clean_cfg;
  SchedulerConfig busy_cfg;
  busy_cfg.load = ChannelLoad::kInterfering;
  PacketScheduler clean(clean_cfg, util::Rng(5));
  PacketScheduler busy(busy_cfg, util::Rng(5));
  double worst_clean = 0.0;
  double worst_busy = 0.0;
  for (int i = 0; i < 60000; ++i) {
    worst_clean = std::max(worst_clean, clean.next_interval());
    worst_busy = std::max(worst_busy, busy.next_interval());
  }
  // Sec. 5.3.5: 49 ms vs 34 ms worst-case frame interval.
  EXPECT_GT(worst_busy, worst_clean);
  EXPECT_LE(worst_busy, busy_cfg.busy_burst_gap_s + 1e-9);
}

TEST(SchedulerTest, IntervalsAreIrregular) {
  // CSMA jitter: consecutive intervals must differ (what forces the
  // resampling step in Sec. 3.4.3).
  PacketScheduler sched(SchedulerConfig{}, util::Rng(6));
  int distinct = 0;
  double prev = sched.next_interval();
  for (int i = 0; i < 100; ++i) {
    const double cur = sched.next_interval();
    if (std::abs(cur - prev) > 1e-6) ++distinct;
    prev = cur;
  }
  EXPECT_GT(distinct, 90);
}

TEST(SchedulerTest, EmptyWindow) {
  PacketScheduler sched(SchedulerConfig{}, util::Rng(7));
  EXPECT_TRUE(sched.arrivals(5.0, 5.0).empty());
  EXPECT_TRUE(sched.arrivals(5.0, 4.0).empty());
}

}  // namespace
}  // namespace vihot::wifi
