#include "wifi/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "channel/cabin.h"
#include "wifi/link.h"

namespace vihot::wifi {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
  }
  std::string path_ = ::testing::TempDir() + "vihot_trace_test.csv";
};

std::vector<CsiMeasurement> sample_capture(double seconds = 0.5) {
  const channel::CabinScene scene = channel::make_cabin_scene();
  const channel::ChannelModel model(scene, channel::SubcarrierGrid{},
                                    channel::HeadScatterModel{});
  WifiLink link(model, NoiseConfig{}, SchedulerConfig{}, util::Rng(17));
  return link.capture(0.0, seconds, [&](double t) {
    channel::CabinState st;
    st.head.position = scene.driver_head_center;
    st.head.theta = 0.5 * std::sin(3.0 * t);
    return st;
  });
}

TEST_F(TraceIoTest, CsiRoundTrip) {
  const auto capture = sample_capture();
  ASSERT_GT(capture.size(), 100u);
  ASSERT_TRUE(write_csi_trace(path_, capture));
  const auto loaded = read_csi_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), capture.size());
  for (std::size_t i = 0; i < capture.size(); i += 37) {
    EXPECT_NEAR((*loaded)[i].t, capture[i].t, 1e-9);
    for (std::size_t f = 0; f < capture[i].num_subcarriers(); f += 7) {
      EXPECT_NEAR(std::abs((*loaded)[i].h[0][f] - capture[i].h[0][f]), 0.0,
                  1e-9);
      EXPECT_NEAR(std::abs((*loaded)[i].h[1][f] - capture[i].h[1][f]), 0.0,
                  1e-9);
    }
  }
}

TEST_F(TraceIoTest, CsiMissingFile) {
  EXPECT_FALSE(read_csi_trace("/nonexistent/dir/foo.csv").has_value());
}

TEST_F(TraceIoTest, CsiRejectsBadHeader) {
  std::ofstream os(path_);
  os << "not a vihot trace\n1.0,0.5,0.5\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsTruncatedRow) {
  const auto capture = sample_capture(0.05);
  ASSERT_TRUE(write_csi_trace(path_, capture));
  // Append a malformed row.
  std::ofstream os(path_, std::ios::app);
  os << "1.23,0.5,0.5\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsGarbageSubcarrierCount) {
  // Regression: a non-numeric count fed std::stoul, which throws instead
  // of returning nullopt.
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=garbage\n1.0,0.5,0.5\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsMissingOrWrongAntennaCount) {
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=3 subcarriers=4\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());

  std::ofstream os2(path_);
  os2 << "# vihot-csi v1 subcarriers=4\n";
  os2.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());

  std::ofstream os3(path_);
  os3 << "# vihot-csi v1 antennas=x subcarriers=4\n";
  os3.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsAbsurdSubcarrierCount) {
  // A corrupt count must not drive a runaway reserve (or overflow).
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=4000000000\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());

  std::ofstream os2(path_);
  os2 << "# vihot-csi v1 antennas=2 subcarriers=99999999999999999999999\n";
  os2.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsRowWiderThanHeader) {
  // A row carrying more values than the declared shape means header and
  // body disagree; silently truncating the frame would corrupt phases.
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=1\n"
     << "0.5,1.0,0.0,1.0,0.0,9.0,9.0\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, EmptyCaptureRoundTrips) {
  ASSERT_TRUE(write_csi_trace(path_, {}));
  const auto loaded = read_csi_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(TraceIoTest, ImuRoundTrip) {
  std::vector<imu::ImuSample> samples;
  for (int i = 0; i < 200; ++i) {
    imu::ImuSample s;
    s.t = 0.01 * i;
    s.gyro_yaw_rad_s = 0.1 * std::sin(0.5 * i);
    s.accel_lateral_mps2 = 0.6 * std::cos(0.3 * i);
    samples.push_back(s);
  }
  ASSERT_TRUE(write_imu_trace(path_, samples));
  const auto loaded = read_imu_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); i += 13) {
    EXPECT_NEAR((*loaded)[i].t, samples[i].t, 1e-9);
    EXPECT_NEAR((*loaded)[i].gyro_yaw_rad_s, samples[i].gyro_yaw_rad_s,
                1e-9);
    EXPECT_NEAR((*loaded)[i].accel_lateral_mps2,
                samples[i].accel_lateral_mps2, 1e-9);
  }
}

TEST_F(TraceIoTest, ImuRejectsWrongMagic) {
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=30\n";
  os.close();
  EXPECT_FALSE(read_imu_trace(path_).has_value());
}

}  // namespace
}  // namespace vihot::wifi
