#include "wifi/trace_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "channel/cabin.h"
#include "wifi/link.h"

namespace vihot::wifi {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
  }
  // Per-test file name: ctest -jN runs cases of this fixture in
  // parallel processes, and a shared path races.
  std::string path_ =
      ::testing::TempDir() + "vihot_trace_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".csv";
};

std::vector<CsiMeasurement> sample_capture(double seconds = 0.5) {
  const channel::CabinScene scene = channel::make_cabin_scene();
  const channel::ChannelModel model(scene, channel::SubcarrierGrid{},
                                    channel::HeadScatterModel{});
  WifiLink link(model, NoiseConfig{}, SchedulerConfig{}, util::Rng(17));
  return link.capture(0.0, seconds, [&](double t) {
    channel::CabinState st;
    st.head.position = scene.driver_head_center;
    st.head.theta = 0.5 * std::sin(3.0 * t);
    return st;
  });
}

TEST_F(TraceIoTest, CsiRoundTrip) {
  const auto capture = sample_capture();
  ASSERT_GT(capture.size(), 100u);
  ASSERT_TRUE(write_csi_trace(path_, capture));
  const auto loaded = read_csi_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), capture.size());
  for (std::size_t i = 0; i < capture.size(); i += 37) {
    EXPECT_NEAR((*loaded)[i].t, capture[i].t, 1e-9);
    for (std::size_t f = 0; f < capture[i].num_subcarriers(); f += 7) {
      EXPECT_NEAR(std::abs((*loaded)[i].h[0][f] - capture[i].h[0][f]), 0.0,
                  1e-9);
      EXPECT_NEAR(std::abs((*loaded)[i].h[1][f] - capture[i].h[1][f]), 0.0,
                  1e-9);
    }
  }
}

TEST_F(TraceIoTest, CsiMissingFile) {
  EXPECT_FALSE(read_csi_trace("/nonexistent/dir/foo.csv").has_value());
}

TEST_F(TraceIoTest, CsiRejectsBadHeader) {
  std::ofstream os(path_);
  os << "not a vihot trace\n1.0,0.5,0.5\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsTruncatedRow) {
  const auto capture = sample_capture(0.05);
  ASSERT_TRUE(write_csi_trace(path_, capture));
  // Append a malformed row.
  std::ofstream os(path_, std::ios::app);
  os << "1.23,0.5,0.5\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsGarbageSubcarrierCount) {
  // Regression: a non-numeric count fed std::stoul, which throws instead
  // of returning nullopt.
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=garbage\n1.0,0.5,0.5\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsMissingOrWrongAntennaCount) {
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=3 subcarriers=4\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());

  std::ofstream os2(path_);
  os2 << "# vihot-csi v1 subcarriers=4\n";
  os2.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());

  std::ofstream os3(path_);
  os3 << "# vihot-csi v1 antennas=x subcarriers=4\n";
  os3.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsAbsurdSubcarrierCount) {
  // A corrupt count must not drive a runaway reserve (or overflow).
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=4000000000\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());

  std::ofstream os2(path_);
  os2 << "# vihot-csi v1 antennas=2 subcarriers=99999999999999999999999\n";
  os2.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRejectsRowWiderThanHeader) {
  // A row carrying more values than the declared shape means header and
  // body disagree; silently truncating the frame would corrupt phases.
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=1\n"
     << "0.5,1.0,0.0,1.0,0.0,9.0,9.0\n";
  os.close();
  EXPECT_FALSE(read_csi_trace(path_).has_value());
}

TEST_F(TraceIoTest, CsiRoundTripIsBitExactOverAwkwardDoubles) {
  // Property test for the max_digits10 serialization fix: denormals,
  // near-overflow magnitudes, negative zero and seeded random values
  // must all reload with identical bit patterns (precision(12) lost up
  // to 5 decimal digits here, which broke bit-exact replay of recorded
  // traces).
  const auto bits = [](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  std::vector<double> values = {0.1,    1.0 / 3.0, 3e-310, -3e-310, 5e-324,
                                1.7e308, -1.7e308, -0.0,
                                2.2250738585072014e-308};
  util::Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    // Spread mantissas across wildly different exponents.
    values.push_back(rng.uniform(-1.0, 1.0) *
                     std::pow(10.0, rng.uniform(-300.0, 300.0)));
  }

  std::vector<CsiMeasurement> capture;
  for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
    CsiMeasurement m;
    m.t = 0.001 * static_cast<double>(i);
    m.h[0] = {{values[i], values[i + 1]}, {-values[i + 1], values[i]}};
    m.h[1] = {{1.0, 0.0}, {0.0, -0.0}};
    capture.push_back(m);
  }
  ASSERT_TRUE(write_csi_trace(path_, capture));
  const auto loaded = read_csi_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), capture.size());
  for (std::size_t i = 0; i < capture.size(); ++i) {
    EXPECT_EQ(bits((*loaded)[i].t), bits(capture[i].t)) << "frame " << i;
    for (int a = 0; a < 2; ++a) {
      ASSERT_EQ((*loaded)[i].h[a].size(), capture[i].h[a].size());
      for (std::size_t f = 0; f < capture[i].h[a].size(); ++f) {
        EXPECT_EQ(bits((*loaded)[i].h[a][f].real()),
                  bits(capture[i].h[a][f].real()))
            << "frame " << i << " antenna " << a << " sc " << f;
        EXPECT_EQ(bits((*loaded)[i].h[a][f].imag()),
                  bits(capture[i].h[a][f].imag()))
            << "frame " << i << " antenna " << a << " sc " << f;
      }
    }
  }
}

TEST_F(TraceIoTest, ImuRoundTripIsBitExact) {
  const auto bits = [](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  std::vector<imu::ImuSample> samples;
  util::Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    imu::ImuSample s;
    s.t = 0.01 * i;
    s.gyro_yaw_rad_s =
        rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-300.0, 300.0));
    s.accel_lateral_mps2 = (i % 2 == 0) ? -0.0 : 3e-310;
    samples.push_back(s);
  }
  ASSERT_TRUE(write_imu_trace(path_, samples));
  const auto loaded = read_imu_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(bits((*loaded)[i].t), bits(samples[i].t));
    EXPECT_EQ(bits((*loaded)[i].gyro_yaw_rad_s),
              bits(samples[i].gyro_yaw_rad_s));
    EXPECT_EQ(bits((*loaded)[i].accel_lateral_mps2),
              bits(samples[i].accel_lateral_mps2));
  }
}

TEST_F(TraceIoTest, EmptyCaptureRoundTrips) {
  ASSERT_TRUE(write_csi_trace(path_, {}));
  const auto loaded = read_csi_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(TraceIoTest, ImuRoundTrip) {
  std::vector<imu::ImuSample> samples;
  for (int i = 0; i < 200; ++i) {
    imu::ImuSample s;
    s.t = 0.01 * i;
    s.gyro_yaw_rad_s = 0.1 * std::sin(0.5 * i);
    s.accel_lateral_mps2 = 0.6 * std::cos(0.3 * i);
    samples.push_back(s);
  }
  ASSERT_TRUE(write_imu_trace(path_, samples));
  const auto loaded = read_imu_trace(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); i += 13) {
    EXPECT_NEAR((*loaded)[i].t, samples[i].t, 1e-9);
    EXPECT_NEAR((*loaded)[i].gyro_yaw_rad_s, samples[i].gyro_yaw_rad_s,
                1e-9);
    EXPECT_NEAR((*loaded)[i].accel_lateral_mps2,
                samples[i].accel_lateral_mps2, 1e-9);
  }
}

TEST_F(TraceIoTest, ImuRejectsWrongMagic) {
  std::ofstream os(path_);
  os << "# vihot-csi v1 antennas=2 subcarriers=30\n";
  os.close();
  EXPECT_FALSE(read_imu_trace(path_).has_value());
}

}  // namespace
}  // namespace vihot::wifi
