#!/usr/bin/env bash
# End-to-end daemon gate: boot a real vihotd, drive it with
# vihot_loadgen over the golden corpus, then prove the graceful-exit
# contract. Run by the `daemon` leg of tools/run_checks.sh (and CI's
# daemon-gate job); all daemon/loadgen output lands in
# ${BUILD}/daemon-logs for artifact upload on failure.
#
#   1. verify   every corpus .vrlog through the daemon must be
#               bit-identical to its recorded outputs (sequentially,
#               against ONE warm daemon — the clock-reset path)
#   2. soak     >= 4 feeder replicas + >= 4 subscribers, two chaos
#               replicas that vanish mid-frame and a slow kBlock
#               subscriber with a 4-deep queue
#   3. sigterm  SIGTERM -> drain -> exit 0, socket unlinked, health
#               snapshot written with zero residual sessions
#
# usage: tools/daemon_gate.sh [build-dir]   (default: build)
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD="${1:-build}"
LOGDIR="${BUILD}/daemon-logs"
mkdir -p "${LOGDIR}"

VIHOTD="${BUILD}/tools/vihotd"
LOADGEN="${BUILD}/tools/vihot_loadgen"
for bin in "${VIHOTD}" "${LOADGEN}"; do
  if [ ! -x "${bin}" ]; then
    echo "daemon-gate: missing binary ${bin} (build first)" >&2
    exit 1
  fi
done

SOCK="$(mktemp -u "${TMPDIR:-/tmp}/vihotd-gate.XXXXXX.sock")"
HEALTH="${LOGDIR}/health-on-exit.json"

# Background the binary DIRECTLY so $! is vihotd itself — wrapping it in
# a subshell would make SIGTERM hit the subshell and orphan the daemon.
"${VIHOTD}" --socket "${SOCK}" --health-on-exit "${HEALTH}" \
  > "${LOGDIR}/vihotd.log" 2>&1 &
DPID=$!

cleanup() {
  kill -KILL "${DPID}" 2>/dev/null || true
  rm -f "${SOCK}"
}
trap cleanup EXIT

# Wait for the socket to appear (the daemon binds before serving).
bound=0
for _ in $(seq 1 100); do
  [ -S "${SOCK}" ] && { bound=1; break; }
  kill -0 "${DPID}" 2>/dev/null || break
  sleep 0.1
done
if [ "${bound}" -ne 1 ]; then
  echo "daemon-gate: vihotd never bound ${SOCK}" >&2
  cat "${LOGDIR}/vihotd.log" >&2 || true
  exit 1
fi

rc=0

echo "== daemon-gate: corpus verify (bit-identity through the socket) =="
for log in tests/corpus/*.vrlog; do
  name="$(basename "${log}" .vrlog)"
  if "${LOADGEN}" verify --socket "${SOCK}" --log "${log}" \
      > "${LOGDIR}/verify-${name}.log" 2>&1; then
    sed -n '$p' "${LOGDIR}/verify-${name}.log"
  else
    echo "daemon-gate: verify FAILED for ${name}" >&2
    cat "${LOGDIR}/verify-${name}.log" >&2
    rc=1
  fi
done

echo "== daemon-gate: chaos soak (4+2 replicas, 4 subscribers) =="
if "${LOADGEN}" soak --socket "${SOCK}" --log tests/corpus/baseline.vrlog \
    --replicas 4 --subscribers 4 \
    --disconnect-replicas 2 --disconnect-after 7 \
    --slow-subscriber-ms 20 --sub-policy block --sub-capacity 4 \
    > "${LOGDIR}/soak.log" 2>&1; then
  sed -n '$p' "${LOGDIR}/soak.log"
else
  echo "daemon-gate: soak FAILED" >&2
  cat "${LOGDIR}/soak.log" >&2
  rc=1
fi

echo "== daemon-gate: multi-occupant soak (rideshare churn log) =="
# The scenario-pack churn recording opens and closes sessions MID-LOG
# (kSessionStart/kSessionEnd); replicated soak proves the daemon
# survives concurrent feeders that each create and destroy sessions on
# the fly, not just the steady two-session corpus shape.
if "${LOADGEN}" soak --socket "${SOCK}" \
    --log tests/corpus/pack_churn.vrlog \
    --replicas 3 --subscribers 2 \
    > "${LOGDIR}/soak-pack-churn.log" 2>&1; then
  sed -n '$p' "${LOGDIR}/soak-pack-churn.log"
else
  echo "daemon-gate: multi-occupant soak FAILED" >&2
  cat "${LOGDIR}/soak-pack-churn.log" >&2
  rc=1
fi

echo "== daemon-gate: SIGTERM drain =="
kill -TERM "${DPID}"
drc=0
wait "${DPID}" || drc=$?
if [ "${drc}" -ne 0 ]; then
  echo "daemon-gate: vihotd exited ${drc} after SIGTERM (want 0)" >&2
  cat "${LOGDIR}/vihotd.log" >&2
  rc=1
fi
if [ -S "${SOCK}" ]; then
  echo "daemon-gate: socket not unlinked on exit" >&2
  rc=1
fi
if [ ! -s "${HEALTH}" ]; then
  echo "daemon-gate: --health-on-exit wrote nothing" >&2
  rc=1
elif ! grep -q '"sessions": 0' "${HEALTH}"; then
  echo "daemon-gate: residual sessions in exit health snapshot:" >&2
  cat "${HEALTH}" >&2
  rc=1
fi

if [ "${rc}" -eq 0 ]; then
  echo "daemon-gate: OK (verify + soak + graceful drain)"
else
  echo "daemon-gate: FAILED (logs in ${LOGDIR})" >&2
fi
exit "${rc}"
