#!/usr/bin/env bash
# Golden replay corpus generator + drift guard.
#
# The corpus under tests/corpus/ is a set of seeded vihot_sim runs
# recorded as .vrlog flight-recorder logs. replay_corpus_tests (label
# replay-gate) replays every log on each change and requires bit-identical
# outputs, turning any numerical drift in the pipeline into a test
# failure with a first-divergence report.
#
#   tools/gen_corpus.sh            # drift guard: regenerate to a temp
#                                  # dir, byte-compare with checked-in,
#                                  # fail on any difference
#   tools/gen_corpus.sh --update   # refresh the checked-in corpus
#                                  # (intentional behavior changes only;
#                                  # explain the delta in the PR)
#
# Environment:
#   CORPUS_BUILD_DIR=DIR   build tree with vihot_sim/vihot_replay
#                          (default: build)
#
# The sim loop is single-threaded — even --async-ingest offers arrive in
# program order — and the log format contains no wall-clock fields, so a
# regeneration with the same seed is byte-identical, which is what makes
# the plain `cmp` guard sound.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${CORPUS_BUILD_DIR:-build}"
sim="${build}/tools/vihot_sim"
replay="${build}/tools/vihot_replay"
corpus="tests/corpus"

for bin in "${sim}" "${replay}"; do
  if [ ! -x "${bin}" ]; then
    echo "error: ${bin} not built (cmake --build ${build})" >&2
    exit 1
  fi
done

# Scenario table: name + vihot_sim flags. Seeds are fixed forever; short
# two-session runs keep each log around a megabyte. The pack_* entries
# record shortened scenario packs (seed baked into the pack): the
# crosstalk log covers the two-occupant channel, and the churn log
# covers mid-log kSessionStart/kSessionEnd — the replayer and the daemon
# gate both re-drive live session churn from it.
names=(baseline steering async_ingest faults_async
       pack_crosstalk pack_churn)
flags=(
  "--seed 11 --sessions 2 --duration 2"
  "--seed 22 --sessions 2 --duration 2 --steering"
  "--seed 33 --sessions 2 --duration 2 --async-ingest"
  "--seed 44 --sessions 2 --duration 2 --faults --async-ingest"
  "--scenario driver_passenger_crosstalk --duration 2"
  "--scenario rideshare_churn --duration 3"
)

generate() {
  local outdir="$1"
  local i
  for i in "${!names[@]}"; do
    # shellcheck disable=SC2086  # flags are intentionally word-split
    "${sim}" ${flags[$i]} --record "${outdir}/${names[$i]}.vrlog" \
      > /dev/null
  done
}

verify() {
  local dir="$1"
  local name
  for name in "${names[@]}"; do
    "${replay}" verify "${dir}/${name}.vrlog"
  done
}

if [ "${1:-}" = "--update" ]; then
  mkdir -p "${corpus}"
  generate "${corpus}"
  verify "${corpus}"
  echo "corpus refreshed under ${corpus}/"
  exit 0
fi

# Drift guard: the corpus regenerated on this tree must byte-match the
# checked-in logs. A mismatch means either nondeterminism crept into the
# record path or a behavior change landed without a corpus refresh.
tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT
generate "${tmp}"
drift=0
for name in "${names[@]}"; do
  if ! cmp -s "${corpus}/${name}.vrlog" "${tmp}/${name}.vrlog"; then
    echo "DRIFT: ${name}.vrlog regenerates differently from the" \
         "checked-in log" >&2
    drift=1
  fi
done
if [ "${drift}" -ne 0 ]; then
  echo "corpus drift detected — if the behavior change is intentional," \
       "run tools/gen_corpus.sh --update and explain it in the PR" >&2
  exit 1
fi
verify "${tmp}" > /dev/null
echo "corpus drift guard: ${#names[@]} logs byte-identical and verified"
