#!/usr/bin/env bash
# Hardening sweep and CI driver.
#
# Legs (in default order): the matcher-equivalence gate proves the
# pruned segment-matcher fast path is bit-identical to the naive
# reference before anything else runs (plus a bench_dtw_micro smoke
# run); the asan and tsan presets build and run the full suite under
# each sanitizer (the tsan leg keeps TrackerEngine / WorkerPool /
# ingest rings honest — engine_tests exercises concurrent producers,
# session churn and batch ticks); the release preset (-DNDEBUG,
# asserts compiled out) runs the release-guard label. The `default`
# leg is the plain tier-1 pass: default preset build + full ctest.
#
#   tools/run_checks.sh                  # matcher + asan + tsan + release
#   tools/run_checks.sh default          # plain build + full suite
#   tools/run_checks.sh tsan release     # any subset, in order
#   tools/run_checks.sh --list           # print known legs and exit
#
# Environment:
#   CHECK_JOBS=N          parallel build/test jobs (default: nproc)
#   CHECK_CMAKE_ARGS=...  extra configure args appended to every cmake
#                         --preset call (e.g. ccache:
#                         "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache")
#   CHECK_JUNIT_DIR=DIR   write ctest --output-junit XML per leg here
#
# Every requested leg runs even after an earlier one fails; the
# PASS/FAIL summary trailer reports each, and the exit status is
# non-zero if any leg failed — one CI run yields the complete picture
# plus per-leg junit artifacts.
set -uo pipefail

cd "$(dirname "$0")/.."

all_legs=(matcher asan tsan release)
known_legs=(matcher default asan tsan release)

if [ "${1:-}" = "--list" ]; then
  printf '%s\n' "${known_legs[@]}"
  exit 0
fi

jobs="${CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
junit_dir="${CHECK_JUNIT_DIR:-}"
[ -n "${junit_dir}" ] && mkdir -p "${junit_dir}"

legs=("$@")
if [ ${#legs[@]} -eq 0 ]; then
  legs=("${all_legs[@]}")
fi

# run_ctest <test-preset> <junit-name>
run_ctest() {
  local preset="$1" name="$2"
  if [ -n "${junit_dir}" ]; then
    ctest --preset "${preset}" -j "${jobs}" \
      --output-junit "${junit_dir}/${name}.xml"
  else
    ctest --preset "${preset}" -j "${jobs}"
  fi
}

# configure_build <configure/build-preset>
configure_build() {
  local preset="$1"
  echo "== ${leg}: configure (${preset}) =="
  # shellcheck disable=SC2086  # CHECK_CMAKE_ARGS is intentionally split
  cmake --preset "${preset}" ${CHECK_CMAKE_ARGS:-} || return 1
  echo "== ${leg}: build =="
  cmake --build --preset "${preset}" -j "${jobs}"
}

run_leg() {
  local leg="$1"
  case "${leg}" in
    matcher)
      # Equivalence gate + bench smoke on the default preset (the only
      # one that builds bench_dtw_micro; sanitizer presets set
      # VIHOT_BUILD_BENCH=OFF). The bench run is a smoke test — one
      # short pass over the SeriesMatch A/B trio to catch crashes and
      # print the prune-rate label — not a timing-stable measurement.
      configure_build default || return 1
      echo "== ${leg}: equivalence tests =="
      run_ctest matcher-equivalence matcher-gate || return 1
      echo "== ${leg}: bench smoke =="
      ./build/bench/bench_dtw_micro --benchmark_filter=SeriesMatch
      ;;
    default)
      configure_build default || return 1
      echo "== ${leg}: test =="
      run_ctest default default
      ;;
    release)
      configure_build release || return 1
      echo "== ${leg}: release-guard tests =="
      # Only the NDEBUG-sensitive guard label; the full suite already
      # runs under both sanitizers.
      run_ctest release-guard release-guard
      ;;
    asan|tsan)
      configure_build "${leg}" || return 1
      echo "== ${leg}: equivalence gate =="
      # Gate first (fast, and the most load-bearing invariant under a
      # sanitizer), then the full suite.
      run_ctest "matcher-equivalence-${leg}" "${leg}-gate" || return 1
      echo "== ${leg}: full suite =="
      run_ctest "${leg}" "${leg}"
      ;;
    *)
      echo "unknown leg '${leg}' (known: ${known_legs[*]})" >&2
      return 1
      ;;
  esac
}

declare -A status
failed=0
for leg in "${legs[@]}"; do
  if run_leg "${leg}"; then
    status[${leg}]=PASS
  else
    status[${leg}]=FAIL
    failed=1
  fi
done

echo
echo "== summary =="
for leg in "${legs[@]}"; do
  printf '  %-8s %s\n' "${leg}" "${status[${leg}]}"
done
if [ "${failed}" -ne 0 ]; then
  echo "Some checks FAILED"
  exit 1
fi
echo "All checks passed: ${legs[*]}"
