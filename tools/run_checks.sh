#!/usr/bin/env bash
# Sanitizer sweep: build the asan and tsan presets and run the test suite
# under each. The tsan leg is what keeps TrackerEngine / WorkerPool honest
# (engine_tests exercises concurrent producers against batch ticks).
#
#   tools/run_checks.sh            # both sanitizers, full ctest
#   tools/run_checks.sh tsan       # one preset only
#   CHECK_JOBS=8 tools/run_checks.sh
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(asan tsan)
fi

for preset in "${presets[@]}"; do
  echo "== ${preset}: configure =="
  cmake --preset "${preset}"
  echo "== ${preset}: build =="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "== ${preset}: test =="
  ctest --preset "${preset}" -j "${jobs}"
done

echo "All sanitizer checks passed: ${presets[*]}"
