#!/usr/bin/env bash
# Hardening sweep: run the matcher-equivalence gate against the default
# preset (plus a bench_dtw_micro smoke run), then build the asan and tsan
# presets and run the test suite under each, then build the release
# preset (-DNDEBUG, asserts compiled out) and run the release-guard suite
# against it. The matcher leg proves the pruned segment-matcher fast path
# is bit-identical to the naive reference before anything else runs; the
# tsan leg keeps TrackerEngine / WorkerPool / MatchParallelizer honest
# (engine_tests exercises concurrent producers against batch ticks); the
# release leg proves the ingest/DSP edge guards hold where assert() is
# gone.
#
#   tools/run_checks.sh            # matcher + asan + tsan + release-guard
#   tools/run_checks.sh tsan       # one preset only
#   tools/run_checks.sh matcher    # just the equivalence gate + bench smoke
#   tools/run_checks.sh release    # just the NDEBUG guard pass
#   CHECK_JOBS=8 tools/run_checks.sh
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(matcher asan tsan release)
fi

for preset in "${presets[@]}"; do
  if [ "${preset}" = "matcher" ]; then
    # Equivalence gate + bench smoke on the default preset (the only one
    # that builds bench_dtw_micro; sanitizer presets set
    # VIHOT_BUILD_BENCH=OFF). The bench run is a smoke test — one short
    # pass over the SeriesMatch A/B trio to catch crashes and print the
    # prune-rate label — not a timing-stable measurement.
    echo "== matcher: configure =="
    cmake --preset default
    echo "== matcher: build =="
    cmake --build --preset default -j "${jobs}"
    echo "== matcher: equivalence tests =="
    ctest --preset matcher-equivalence -j "${jobs}"
    echo "== matcher: bench smoke =="
    ./build/bench/bench_dtw_micro --benchmark_filter=SeriesMatch
    continue
  fi
  echo "== ${preset}: configure =="
  cmake --preset "${preset}"
  echo "== ${preset}: build =="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "== ${preset}: test =="
  if [ "${preset}" = "release" ]; then
    # Only the NDEBUG-sensitive guard label; the full suite already runs
    # under both sanitizers above.
    ctest --preset release-guard -j "${jobs}"
  else
    # Equivalence gate first (fast, and the most load-bearing invariant
    # under this sanitizer), then the full suite.
    ctest --preset "matcher-equivalence-${preset}" -j "${jobs}"
    ctest --preset "${preset}" -j "${jobs}"
  fi
done

echo "All checks passed: ${presets[*]}"
