#!/usr/bin/env bash
# Hardening sweep and CI driver.
#
# Legs (in default order): the matcher-equivalence gate proves the
# pruned segment-matcher fast path is bit-identical to the naive
# reference before anything else runs (plus a bench_dtw_micro smoke
# run); the scalar leg re-runs the matcher-equivalence + replay-gate
# labels and the corpus verify with VIHOT_SIMD=off, proving the
# dispatcher's portable scalar kernels reproduce the exact same bits as
# whatever SIMD table the host resolves to; the daemon leg runs the
# daemon ctest label and then tools/daemon_gate.sh (a real vihotd
# driven by vihot_loadgen over the golden corpus, chaos soak, SIGTERM
# drain); the asan and tsan presets
# build and run the full suite under each sanitizer (the tsan leg keeps TrackerEngine / WorkerPool /
# ingest rings honest — engine_tests exercises concurrent producers,
# session churn and batch ticks, and the fleet label re-proves the
# sharded FleetRouter tier under the same load); the release preset
# (-DNDEBUG, asserts compiled out) runs the release-guard label. The
# `default` leg is the plain tier-1 pass: default preset build + full
# ctest (backend-matrix and fleet gates first, as named artifacts).
#
#   tools/run_checks.sh                  # matcher + asan + tsan + release
#   tools/run_checks.sh default          # plain build + full suite
#   tools/run_checks.sh tsan release     # any subset, in order
#   tools/run_checks.sh --list           # print known legs and exit
#
# Environment:
#   CHECK_JOBS=N          parallel build/test jobs (default: nproc)
#   CHECK_CMAKE_ARGS=...  extra configure args appended to every cmake
#                         --preset call (e.g. ccache:
#                         "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache")
#   CHECK_JUNIT_DIR=DIR   write ctest --output-junit XML per leg here
#
# Every requested leg runs even after an earlier one fails; the
# PASS/FAIL summary trailer reports each, and the exit status is
# non-zero if any leg failed — one CI run yields the complete picture
# plus per-leg junit artifacts.
set -uo pipefail

cd "$(dirname "$0")/.."

all_legs=(matcher scalar replay daemon asan tsan release)
known_legs=(matcher scalar replay daemon default asan tsan release)

if [ "${1:-}" = "--list" ]; then
  printf '%s\n' "${known_legs[@]}"
  exit 0
fi

jobs="${CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
junit_dir="${CHECK_JUNIT_DIR:-}"
[ -n "${junit_dir}" ] && mkdir -p "${junit_dir}"

legs=("$@")
if [ ${#legs[@]} -eq 0 ]; then
  legs=("${all_legs[@]}")
fi

# run_ctest <test-preset> <junit-name>
run_ctest() {
  local preset="$1" name="$2"
  if [ -n "${junit_dir}" ]; then
    ctest --preset "${preset}" -j "${jobs}" \
      --output-junit "${junit_dir}/${name}.xml"
  else
    ctest --preset "${preset}" -j "${jobs}"
  fi
}

# configure_build <configure/build-preset>
configure_build() {
  local preset="$1"
  echo "== ${leg}: configure (${preset}) =="
  # shellcheck disable=SC2086  # CHECK_CMAKE_ARGS is intentionally split
  cmake --preset "${preset}" ${CHECK_CMAKE_ARGS:-} || return 1
  echo "== ${leg}: build =="
  cmake --build --preset "${preset}" -j "${jobs}"
}

run_leg() {
  local leg="$1"
  case "${leg}" in
    matcher)
      # Equivalence gate + bench smoke on the default preset (the only
      # one that builds bench_dtw_micro; sanitizer presets set
      # VIHOT_BUILD_BENCH=OFF). The bench run is a smoke test — one
      # short pass over the SeriesMatch A/B trio to catch crashes and
      # print the prune-rate label — not a timing-stable measurement.
      configure_build default || return 1
      echo "== ${leg}: equivalence tests =="
      run_ctest matcher-equivalence matcher-gate || return 1
      echo "== ${leg}: bench smoke =="
      ./build/bench/bench_dtw_micro --benchmark_filter=SeriesMatch
      ;;
    scalar)
      # Forced-scalar dispatch: VIHOT_SIMD=off makes dsp::simd::active()
      # resolve to the portable scalar table no matter what the CPU
      # supports. The matcher-equivalence and replay-gate labels plus
      # the golden-corpus verify must produce byte-identical results —
      # the bit-identity contract of DESIGN.md §5j, checked from the
      # other side (SIMD hosts prove scalar == AVX2; this leg keeps the
      # scalar path itself green so non-x86 builds never drift).
      configure_build default || return 1
      echo "== ${leg}: equivalence tests (VIHOT_SIMD=off) =="
      VIHOT_SIMD=off run_ctest matcher-equivalence scalar-matcher-gate \
        || return 1
      echo "== ${leg}: replay-gate tests (VIHOT_SIMD=off) =="
      VIHOT_SIMD=off run_ctest replay-gate scalar-replay-gate || return 1
      echo "== ${leg}: corpus verify (VIHOT_SIMD=off) =="
      mkdir -p build/replay-reports
      local scalar_rc=0
      local slog sname
      for slog in tests/corpus/*.vrlog; do
        sname="$(basename "${slog}" .vrlog)"
        VIHOT_SIMD=off ./build/tools/vihot_replay verify "${slog}" \
          --report "build/replay-reports/scalar-${sname}.txt" \
          || scalar_rc=1
      done
      return "${scalar_rc}"
      ;;
    default)
      configure_build default || return 1
      echo "== ${leg}: backend-matrix gate =="
      # Pluggable-backend matrix first (named junit artifact): the
      # Kalman/EKF accuracy envelopes are the failure mode a backend
      # change hits before anything else in the suite.
      run_ctest backend-matrix backend-matrix || return 1
      echo "== ${leg}: fleet gate =="
      # Sharded-serving invariants (routing, shard-count invariance,
      # profile interning) as a named artifact before the full pass.
      run_ctest fleet fleet || return 1
      echo "== ${leg}: scenario gate =="
      # Scenario-pack envelopes + same-seed .vrlog bit-identity as a
      # named artifact: a pack regression (accuracy envelope breach or
      # lost determinism) surfaces here before the full pass.
      run_ctest scenario scenario || return 1
      echo "== ${leg}: test =="
      run_ctest default default
      ;;
    replay)
      # Flight-recorder gate: the replay-gate label (format, end-to-end
      # bit-identity, golden corpus), then the corpus drift guard
      # (regenerated logs must byte-match the checked-in ones), then an
      # explicit vihot_replay verify over every corpus log with
      # first-divergence reports written where CI can pick them up as
      # artifacts on failure.
      configure_build default || return 1
      echo "== ${leg}: replay-gate tests =="
      run_ctest replay-gate replay-gate || return 1
      echo "== ${leg}: corpus drift guard =="
      tools/gen_corpus.sh || return 1
      echo "== ${leg}: corpus verify =="
      mkdir -p build/replay-reports
      local verify_rc=0
      local log name
      for log in tests/corpus/*.vrlog; do
        name="$(basename "${log}" .vrlog)"
        ./build/tools/vihot_replay verify "${log}" \
          --report "build/replay-reports/${name}.txt" || verify_rc=1
      done
      return "${verify_rc}"
      ;;
    daemon)
      # Tracking-as-a-service gate: the daemon ctest label (protocol
      # robustness + in-process end-to-end), then tools/daemon_gate.sh
      # boots a REAL vihotd and drives it with vihot_loadgen — corpus
      # bit-identity through the socket, a chaos soak (disconnecting
      # feeders, slow kBlock subscriber), and the SIGTERM drain
      # contract. Logs land in build/daemon-logs for CI artifacts.
      configure_build default || return 1
      echo "== ${leg}: daemon tests =="
      run_ctest daemon daemon || return 1
      echo "== ${leg}: end-to-end gate (vihotd + loadgen) =="
      tools/daemon_gate.sh build
      ;;
    release)
      configure_build release || return 1
      echo "== ${leg}: release-guard tests =="
      # Only the NDEBUG-sensitive guard label; the full suite already
      # runs under both sanitizers.
      run_ctest release-guard release-guard
      ;;
    asan|tsan)
      configure_build "${leg}" || return 1
      echo "== ${leg}: equivalence gate =="
      # Gates first (fast, and the most load-bearing invariants under a
      # sanitizer), then the full suite. The replay gate under tsan is
      # what keeps the Recorder's staging-buffer handoff honest against
      # the engine's concurrent producers.
      run_ctest "matcher-equivalence-${leg}" "${leg}-gate" || return 1
      echo "== ${leg}: replay gate =="
      run_ctest "replay-gate-${leg}" "${leg}-replay-gate" || return 1
      if [ "${leg}" = tsan ]; then
        # The EKF backend mutates per-session filter state from batch
        # workers while producers feed CSI/IMU: its backend-matrix
        # label must be TSan-clean before the full suite runs.
        echo "== ${leg}: backend-matrix gate =="
        run_ctest backend-matrix-tsan tsan-backend-matrix || return 1
        # FleetRouter churn/hot-swap races concurrent producers against
        # parallel-shard ticks across >= 2 shards: the fleet label is
        # the sharded tier's data-race proof.
        echo "== ${leg}: fleet gate =="
        run_ctest fleet-tsan tsan-fleet || return 1
        # The daemon crosses reader threads, the tick loop and
        # per-subscriber writer threads: its label is the serving
        # layer's data-race proof.
        echo "== ${leg}: daemon gate =="
        run_ctest daemon-tsan tsan-daemon || return 1
        # Scenario packs drive live session churn (create/destroy while
        # producers feed and batch ticks run) through the fleet tier —
        # the multi-occupant analogue of the fleet churn proof.
        echo "== ${leg}: scenario gate =="
        run_ctest scenario-tsan tsan-scenario || return 1
      fi
      echo "== ${leg}: full suite =="
      run_ctest "${leg}" "${leg}"
      ;;
    *)
      echo "unknown leg '${leg}' (known: ${known_legs[*]})" >&2
      return 1
      ;;
  esac
}

declare -A status
failed=0
for leg in "${legs[@]}"; do
  if run_leg "${leg}"; then
    status[${leg}]=PASS
  else
    status[${leg}]=FAIL
    failed=1
  fi
done

echo
echo "== summary =="
for leg in "${legs[@]}"; do
  printf '  %-8s %s\n' "${leg}" "${status[${leg}]}"
done
if [ "${failed}" -ne 0 ]; then
  echo "Some checks FAILED"
  exit 1
fi
echo "All checks passed: ${legs[*]}"
