#!/usr/bin/env bash
# Hardening sweep: build the asan and tsan presets and run the test suite
# under each, then build the release preset (-DNDEBUG, asserts compiled
# out) and run the release-guard suite against it. The tsan leg keeps
# TrackerEngine / WorkerPool honest (engine_tests exercises concurrent
# producers against batch ticks); the release leg proves the ingest/DSP
# edge guards hold where assert() is gone.
#
#   tools/run_checks.sh            # asan + tsan + release-guard
#   tools/run_checks.sh tsan       # one preset only
#   tools/run_checks.sh release    # just the NDEBUG guard pass
#   CHECK_JOBS=8 tools/run_checks.sh
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(asan tsan release)
fi

for preset in "${presets[@]}"; do
  echo "== ${preset}: configure =="
  cmake --preset "${preset}"
  echo "== ${preset}: build =="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "== ${preset}: test =="
  if [ "${preset}" = "release" ]; then
    # Only the NDEBUG-sensitive guard label; the full suite already runs
    # under both sanitizers above.
    ctest --preset release-guard -j "${jobs}"
  else
    ctest --preset "${preset}" -j "${jobs}"
  fi
done

echo "All checks passed: ${presets[*]}"
