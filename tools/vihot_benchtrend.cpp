// vihot_benchtrend: guard benchmark metrics against regressions.
//
//   vihot_benchtrend --baseline BASE.json --current CUR.json
//                    --metric PATH:DIR:TOL [--metric ...]
//                    [--report PATH]
//
// Compares numeric metrics between two JSON files (the repo's own
// BENCH_fleet.json shape and google-benchmark's --benchmark_out
// shape) and exits 1 with a delta table when any metric regressed
// beyond its tolerance.
//
//   PATH  dotted object path, e.g. ticks_per_s or
//         tick_latency_ms.p99; the segment benchmarks[NAME] selects
//         the entry of the top-level "benchmarks" array whose "name"
//         field equals NAME (google-benchmark layout), e.g.
//         benchmarks[BM_banded_dtw/64].cpu_time
//   DIR   higher | lower — which direction is better
//   TOL   allowed fractional regression, e.g. 0.35 = 35% headroom
//         (benchmarks wobble across machines; tolerances are wide by
//         design — the gate catches cliffs, not noise)
//
// A missing metric in either file is a failure: silently skipping a
// renamed metric would turn the gate off without anyone noticing.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- Minimal JSON value + recursive-descent parser ----------------------
// Supports exactly what benchmark emitters produce: objects, arrays,
// strings, finite numbers, booleans, null. No escapes beyond \" \\ \/
// \n \t (names in benchmark JSON never need more).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  JsonParser(const char* text, std::size_t size)
      : text_(text), size_(size) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == size_;  // no trailing garbage
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < size_ &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < size_ ? text_[pos_] : '\0';
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (pos_ + n > size_ || std::memcmp(text_ + pos_, word, n) != 0) {
      return fail(std::string("expected '") + word + "'");
    }
    pos_ += n;
    return true;
  }

  bool parse_string(std::string* out) {
    if (peek() != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < size_ && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= size_) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= size_) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    switch (peek()) {
      case '{': {
        out->kind = JsonValue::Kind::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (peek() != ':') return fail("expected ':'");
          ++pos_;
          JsonValue child;
          if (!parse_value(&child)) return false;
          out->object.emplace(std::move(key), std::move(child));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          if (peek() == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        out->kind = JsonValue::Kind::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          JsonValue child;
          if (!parse_value(&child)) return false;
          out->array.push_back(std::move(child));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          if (peek() == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default: {
        const std::size_t start = pos_;
        while (pos_ < size_ &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
          ++pos_;
        }
        if (pos_ == start) return fail("unexpected character");
        out->kind = JsonValue::Kind::kNumber;
        out->number =
            std::strtod(std::string(text_ + start, pos_ - start).c_str(),
                        nullptr);
        return true;
      }
    }
  }

  const char* text_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- Metric path resolution ---------------------------------------------

/// Splits "a.b.benchmarks[x.y/8].c" into segments, keeping bracketed
/// names (which may contain dots) intact.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segments;
  std::string cur;
  bool in_bracket = false;
  for (const char c : path) {
    if (c == '[') in_bracket = true;
    if (c == ']') in_bracket = false;
    if (c == '.' && !in_bracket) {
      segments.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  segments.push_back(cur);
  return segments;
}

/// Resolves a path to a number. Returns false with a reason on any
/// missing step (reported, never skipped).
bool resolve(const JsonValue& root, const std::string& path, double* out,
             std::string* why) {
  const JsonValue* node = &root;
  for (const std::string& seg : split_path(path)) {
    const std::size_t bracket = seg.find('[');
    if (bracket != std::string::npos && seg.back() == ']') {
      // field[NAME]: descend into the array `field`, select by "name".
      const std::string field = seg.substr(0, bracket);
      const std::string name =
          seg.substr(bracket + 1, seg.size() - bracket - 2);
      const auto it = node->object.find(field);
      if (node->kind != JsonValue::Kind::kObject ||
          it == node->object.end() ||
          it->second.kind != JsonValue::Kind::kArray) {
        *why = "no array '" + field + "'";
        return false;
      }
      const JsonValue* match = nullptr;
      for (const JsonValue& entry : it->second.array) {
        const auto nit = entry.object.find("name");
        if (entry.kind == JsonValue::Kind::kObject &&
            nit != entry.object.end() && nit->second.str == name) {
          match = &entry;
          break;
        }
      }
      if (match == nullptr) {
        *why = "no entry named '" + name + "' in '" + field + "'";
        return false;
      }
      node = match;
      continue;
    }
    if (node->kind != JsonValue::Kind::kObject) {
      *why = "'" + seg + "': parent is not an object";
      return false;
    }
    const auto it = node->object.find(seg);
    if (it == node->object.end()) {
      *why = "no field '" + seg + "'";
      return false;
    }
    node = &it->second;
  }
  if (node->kind != JsonValue::Kind::kNumber) {
    *why = "not a number";
    return false;
  }
  *out = node->number;
  return true;
}

struct MetricSpec {
  std::string path;
  bool higher_is_better = true;
  double tolerance = 0.0;
};

/// "path:higher:0.35" -> spec. False on malformed input.
bool parse_metric(const std::string& arg, MetricSpec* out) {
  const std::size_t last = arg.rfind(':');
  if (last == std::string::npos || last == 0) return false;
  const std::size_t dir = arg.rfind(':', last - 1);
  if (dir == std::string::npos) return false;
  out->path = arg.substr(0, dir);
  const std::string direction = arg.substr(dir + 1, last - dir - 1);
  if (direction == "higher") {
    out->higher_is_better = true;
  } else if (direction == "lower") {
    out->higher_is_better = false;
  } else {
    return false;
  }
  char* end = nullptr;
  out->tolerance = std::strtod(arg.c_str() + last + 1, &end);
  return end != nullptr && *end == '\0' && out->tolerance >= 0.0 &&
         !out->path.empty();
}

bool load_json(const std::string& path, JsonValue* out, std::string* err) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  JsonParser parser(text.data(), text.size());
  if (!parser.parse(out)) {
    *err = path + ": " + parser.error();
    return false;
  }
  return true;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline BASE.json --current CUR.json "
               "--metric PATH:higher|lower:TOL [--metric ...] "
               "[--report PATH]\n"
               "example metrics:\n"
               "  ticks_per_s:higher:0.5\n"
               "  tick_latency_ms.p99:lower:1.0\n"
               "  benchmarks[BM_banded_dtw/64].cpu_time:lower:0.75\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string report_path;
  std::vector<MetricSpec> metrics;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--baseline") {
      baseline_path = next();
    } else if (a == "--current") {
      current_path = next();
    } else if (a == "--report") {
      report_path = next();
    } else if (a == "--metric") {
      MetricSpec spec;
      if (!parse_metric(next(), &spec)) {
        std::fprintf(stderr, "malformed --metric: %s\n", argv[i]);
        usage(argv[0]);
      }
      metrics.push_back(std::move(spec));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty() || metrics.empty()) {
    std::fprintf(stderr,
                 "--baseline, --current and at least one --metric are "
                 "required\n");
    usage(argv[0]);
  }

  JsonValue baseline;
  JsonValue current;
  std::string err;
  if (!load_json(baseline_path, &baseline, &err) ||
      !load_json(current_path, &current, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  std::ostringstream table;
  table << "metric                                      baseline"
        << "      current        delta   tol     verdict\n";
  int failures = 0;
  for (const MetricSpec& m : metrics) {
    double base = 0.0;
    double cur = 0.0;
    std::string why;
    if (!resolve(baseline, m.path, &base, &why)) {
      table << m.path << ": MISSING in baseline (" << why << ")\n";
      ++failures;
      continue;
    }
    if (!resolve(current, m.path, &cur, &why)) {
      table << m.path << ": MISSING in current (" << why << ")\n";
      ++failures;
      continue;
    }
    // Relative delta signed so that positive = improvement.
    const double rel =
        base != 0.0 ? (cur - base) / base : (cur == 0.0 ? 0.0 : 1e9);
    const double gain = m.higher_is_better ? rel : -rel;
    const bool regressed = gain < -m.tolerance;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-40s %12.4g %12.4g %+10.1f%% %5.0f%%  %s\n",
                  m.path.c_str(), base, cur, rel * 100.0,
                  m.tolerance * 100.0,
                  regressed ? "REGRESSED" : "ok");
    table << line;
    if (regressed) ++failures;
  }
  const std::string rendered = table.str();
  if (!report_path.empty()) {
    std::ofstream os(report_path);
    if (os) os << rendered;
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench trend: %d metric(s) failed\n%s", failures,
                 rendered.c_str());
    return 1;
  }
  std::fputs(rendered.c_str(), stdout);
  return 0;
}
