// vihot_loadgen: replay-driven load and verification for vihotd.
//
//   vihot_loadgen verify --socket PATH --log LOG.vrlog
//       drive the log through a running daemon (one feeder + one
//       subscriber) and bit-compare every streamed TrackResult against
//       the recorded one; exit 0 only on a byte-exact match
//
//   vihot_loadgen soak --socket PATH --log LOG.vrlog [--replicas N]
//       [--subscribers M] [--spacing S] [--offset S]
//       [--disconnect-replicas K] [--disconnect-after E]
//       [--slow-subscriber-ms D] [--sub-policy P] [--sub-capacity N]
//       replay the log as N concurrent re-based feeder replicas plus M
//       streaming subscribers; K extra chaos replicas disconnect
//       mid-frame after E protocol events; exit 0 when every
//       well-behaved replica drove cleanly and every subscriber ended
//       cleanly
//
// Replica r re-bases all timestamps by offset + r * spacing (one shared
// additive delta per replica — the order-preserving re-basing the
// replay layer's --at-offset uses).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "daemon/loadgen.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s verify --socket PATH --log LOG.vrlog [--timeout-ms N]\n"
      "       %s soak --socket PATH --log LOG.vrlog [options]\n"
      "  --replicas N            concurrent feeder replicas (default 1)\n"
      "  --subscribers M         streaming subscribers (default 1)\n"
      "  --spacing S             seconds between replica clocks "
      "(default 1000)\n"
      "  --offset S              base re-basing offset (default 0)\n"
      "  --disconnect-replicas K chaos replicas that vanish mid-frame "
      "(default 0)\n"
      "  --disconnect-after E    protocol events before a chaos replica "
      "vanishes (default 5)\n"
      "  --slow-subscriber-ms D  read delay of the LAST subscriber "
      "(default 0)\n"
      "  --sub-policy P          block|drop-oldest|drop-newest\n"
      "  --sub-capacity N        subscriber queue override\n"
      "  --timeout-ms N          ack/result wait budget (default 10000)\n",
      argv0, argv0);
  std::exit(2);
}

bool parse_policy_u8(const char* s, std::uint8_t* out) {
  if (std::strcmp(s, "block") == 0) {
    *out = 0;
  } else if (std::strcmp(s, "drop-oldest") == 0) {
    *out = 1;
  } else if (std::strcmp(s, "drop-newest") == 0) {
    *out = 2;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vihot;
  if (argc < 2) usage(argv[0]);
  const std::string mode = argv[1];
  if (mode != "verify" && mode != "soak") {
    std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
    usage(argv[0]);
  }

  daemon::LoadgenOptions options;
  std::string log_path;
  std::size_t replicas = 1;
  std::size_t subscribers = 1;
  std::size_t disconnect_replicas = 0;
  std::uint64_t disconnect_after = 5;
  int slow_subscriber_ms = 0;
  daemon::SubscribeRequest sub_req;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--socket") {
      options.socket_path = next();
    } else if (a == "--log") {
      log_path = next();
    } else if (a == "--replicas") {
      replicas = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--subscribers") {
      subscribers =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--spacing") {
      options.replica_spacing = std::strtod(next(), nullptr);
    } else if (a == "--offset") {
      options.base_offset = std::strtod(next(), nullptr);
    } else if (a == "--disconnect-replicas") {
      disconnect_replicas =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--disconnect-after") {
      disconnect_after = std::strtoull(next(), nullptr, 10);
    } else if (a == "--slow-subscriber-ms") {
      slow_subscriber_ms = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (a == "--sub-policy") {
      if (!parse_policy_u8(next(), &sub_req.policy)) usage(argv[0]);
      sub_req.has_policy = true;
    } else if (a == "--sub-capacity") {
      sub_req.capacity =
          static_cast<std::uint32_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--timeout-ms") {
      options.timeout_ms = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (options.socket_path.empty() || log_path.empty()) {
    std::fprintf(stderr, "--socket and --log are required\n");
    usage(argv[0]);
  }

  const replay::LoadedLog log = replay::LoadedLog::load(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", log_path.c_str(),
                 log.error().c_str());
    return 1;
  }

  if (mode == "verify") {
    const daemon::VerifyStats st =
        daemon::verify_against_daemon(log, options);
    if (!st.ok) {
      std::fprintf(stderr, "verify FAILED: %s\n", st.error.c_str());
      if (!st.first_mismatch.empty()) {
        std::fprintf(stderr, "  first mismatch: %s\n",
                     st.first_mismatch.c_str());
      }
      return 1;
    }
    std::printf(
        "%s: %llu ticks, %llu results, daemon output bit-identical\n",
        log_path.c_str(),
        static_cast<unsigned long long>(st.ticks_compared),
        static_cast<unsigned long long>(st.results_compared));
    return 0;
  }

  // Soak: subscribers first (so no tick goes unobserved), then feeder
  // replicas — well-behaved ones and chaos ones that vanish mid-frame.
  std::atomic<bool> stop{false};
  std::vector<daemon::SubscribeStats> sub_stats(subscribers);
  std::vector<std::thread> sub_threads;
  sub_threads.reserve(subscribers);
  for (std::size_t s = 0; s < subscribers; ++s) {
    // Only the LAST subscriber is slow: one laggard must not hold back
    // the others — that isolation is what the soak asserts.
    const int delay =
        (s + 1 == subscribers) ? slow_subscriber_ms : 0;
    sub_threads.emplace_back([&, s, delay] {
      sub_stats[s] = daemon::run_subscriber(options, sub_req, delay, stop);
    });
  }

  const std::size_t total_replicas = replicas + disconnect_replicas;
  std::vector<daemon::DriveStats> drive_stats(total_replicas);
  std::vector<std::thread> feeders;
  feeders.reserve(total_replicas);
  for (std::size_t r = 0; r < total_replicas; ++r) {
    daemon::LoadgenOptions ropt = options;
    if (r >= replicas) ropt.disconnect_after = disconnect_after;
    const double delta =
        options.base_offset +
        static_cast<double>(r) * options.replica_spacing;
    feeders.emplace_back([&, ropt, delta, r] {
      drive_stats[r] = daemon::drive_replica(log, ropt, delta);
    });
  }
  for (std::thread& t : feeders) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : sub_threads) t.join();

  int rc = 0;
  std::uint64_t feeds = 0;
  std::uint64_t ticks = 0;
  for (std::size_t r = 0; r < total_replicas; ++r) {
    const daemon::DriveStats& st = drive_stats[r];
    feeds += st.feeds_sent;
    ticks += st.ticks_sent;
    if (!st.ok) {
      std::fprintf(stderr, "replica %zu FAILED: %s\n", r,
                   st.error.c_str());
      rc = 1;
    } else if (r >= replicas && !st.disconnected) {
      std::fprintf(stderr, "chaos replica %zu never disconnected\n", r);
      rc = 1;
    }
  }
  std::uint64_t frames = 0;
  for (std::size_t s = 0; s < subscribers; ++s) {
    frames += sub_stats[s].frames_received;
    if (!sub_stats[s].ok) {
      std::fprintf(stderr, "subscriber %zu FAILED: %s\n", s,
                   sub_stats[s].error.c_str());
      rc = 1;
    }
  }
  std::printf(
      "soak: %zu replica(s) (+%zu chaos), %zu subscriber(s): "
      "%llu feeds, %llu ticks sent, %llu result frames received -> %s\n",
      replicas, disconnect_replicas, subscribers,
      static_cast<unsigned long long>(feeds),
      static_cast<unsigned long long>(ticks),
      static_cast<unsigned long long>(frames), rc == 0 ? "OK" : "FAILED");
  return rc;
}
