// vihot_replay: verify, replay and inspect flight-recorder logs.
//
//   vihot_replay verify <log.vrlog> [--threads K] [--report PATH]
//       re-drives the log through a fresh TrackerEngine and checks the
//       outputs are bit-identical to the recorded ones; exit 0 on a
//       clean bill, 1 on divergence or a corrupt log
//   vihot_replay replay <log.vrlog> [--threads K] [--report PATH]
//       like verify, but always writes/prints the full report and only
//       fails on a corrupt log (divergences are reported, not fatal)
//   vihot_replay inspect <log.vrlog>
//       prints the log's header, session, feed and tick inventory
//
// --threads K replays with K workers instead of the recorded count —
// estimates are thread-count invariant, so this is itself a determinism
// check. --report PATH writes the first-divergence report to a file
// (CI uploads it as an artifact on gate failure).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "replay/replayer.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s verify <log.vrlog> [--threads K] "
               "[--report PATH] [backend overrides]\n"
               "       %s replay <log.vrlog> [--threads K] "
               "[--at-offset SECONDS] [--report PATH] [backend "
               "overrides]\n"
               "       %s inspect <log.vrlog>\n"
               "--at-offset re-bases every timestamp by SECONDS (the "
               "load-generator workflow); bit-compare is skipped, the "
               "run must feed cleanly instead\n"
               "backend overrides (what-if replays; expect divergences "
               "unless the log was recorded with the same backends):\n"
               "  --sanitizer-backend eq3|kalman\n"
               "  --tracker-backend dtw|ekf\n",
               argv0, argv0, argv0);
  std::exit(2);
}

bool emit_report(const std::string& report_path, const std::string& text) {
  if (report_path.empty()) return true;
  std::ofstream os(report_path);
  if (!os) return false;
  os << text;
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vihot;
  if (argc < 3) usage(argv[0]);
  const std::string mode = argv[1];
  const std::string path = argv[2];
  replay::ReplayOptions options;
  std::string report_path;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads") {
      if (i + 1 >= argc) usage(argv[0]);
      options.num_threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "--report") {
      if (i + 1 >= argc) usage(argv[0]);
      report_path = argv[++i];
    } else if (a == "--at-offset") {
      if (i + 1 >= argc) usage(argv[0]);
      options.time_offset = std::strtod(argv[++i], nullptr);
    } else if (a == "--sanitizer-backend") {
      if (i + 1 >= argc) usage(argv[0]);
      core::SanitizerBackend backend;
      if (!core::parse_sanitizer_backend(argv[++i], &backend)) {
        std::fprintf(stderr, "unknown sanitizer backend: %s\n", argv[i]);
        usage(argv[0]);
      }
      options.sanitizer_backend_override = backend;
    } else if (a == "--tracker-backend") {
      if (i + 1 >= argc) usage(argv[0]);
      core::TrackerBackend backend;
      if (!core::parse_tracker_backend(argv[++i], &backend)) {
        std::fprintf(stderr, "unknown tracker backend: %s\n", argv[i]);
        usage(argv[0]);
      }
      options.tracker_backend_override = backend;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (mode != "verify" && mode != "replay" && mode != "inspect") {
    std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
    usage(argv[0]);
  }

  const replay::LoadedLog log = replay::LoadedLog::load(path);
  if (mode == "inspect") {
    if (!log.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   log.error().c_str());
      return 1;
    }
    std::fputs(replay::format_summary(path, log.summary()).c_str(), stdout);
    return 0;
  }

  const replay::ReplayResult result = replay::replay(log, options);
  const std::string report = replay::format_report(path, result);
  if (!emit_report(report_path, report)) {
    std::fprintf(stderr, "error: cannot write report to %s\n",
                 report_path.c_str());
    return 1;
  }
  if (!result.ok) {
    std::fputs(report.c_str(), stderr);
    return 1;
  }
  if (mode == "replay") {
    std::fputs(report.c_str(), stdout);
    return 0;
  }
  // verify: quiet on success, loud + nonzero on divergence. A re-based
  // run has no recorded bits to match; its verify contract is that the
  // shifted run re-drove cleanly (every recorded sample accepted).
  if (result.rebased) {
    if (result.fed_cleanly()) {
      std::printf("%s: %llu ticks re-based, fed cleanly\n", path.c_str(),
                  static_cast<unsigned long long>(result.ticks_replayed));
      return 0;
    }
    std::fputs(report.c_str(), stderr);
    return 1;
  }
  if (result.bit_identical()) {
    std::printf("%s: %llu ticks, %llu results, bit-identical\n",
                path.c_str(),
                static_cast<unsigned long long>(result.ticks_replayed),
                static_cast<unsigned long long>(result.results_compared));
    return 0;
  }
  std::fputs(report.c_str(), stderr);
  return 1;
}
