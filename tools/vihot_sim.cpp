// vihot_sim: run any evaluation scenario from the command line.
//
//   vihot_sim [options]
//     --scenario NAME      run a named scenario pack (see
//                          --list-scenarios). The pack defines the whole
//                          cabin — occupant roster, motion, interference,
//                          faults — so it composes ONLY with --seed,
//                          --duration, --threads, --shards, --record,
//                          --csv and --metrics-out; any ad-hoc scenario
//                          flag alongside --scenario is an error
//     --list-scenarios     print the scenario-pack registry and exit
//     --seed N             RNG seed (default 2024)
//     --sessions N         run-time sessions (default 5)
//     --duration S         seconds per session (default 30)
//     --layout 1..5        RX antenna layout (default 1)
//     --driver A|B|C       driver profile (default A)
//     --window-ms N        CSI matching window (default 100)
//     --horizon-ms N       prediction horizon (default 0)
//     --turn-speed D       head turn speed, deg/s (default: driver habit)
//     --passenger          front passenger present
//     --steering           large steering events on the route
//     --vibration          bumpy road / antenna vibration
//     --interference       contended WiFi channel
//     --music              music playing (panel vibration)
//     --seat-shift MM      head-position shift vs profiling (default 0)
//     --sanitizer-backend eq3|kalman
//                          sanitize-stage backend (default eq3)
//     --tracker-backend dtw|ekf
//                          track-stage backend (default dtw)
//     --naive              also evaluate the Eq.-(5) baseline
//     --camera             also evaluate the camera baseline
//     --threads K          fleet mode: serve all sessions concurrently
//                          through the fleet tier with K total workers
//                          (0 = inline batches)
//     --shards N           fleet mode: shard the sessions over N
//                          TrackerEngines (FleetRouter; default 1).
//                          --threads is the TOTAL worker budget, split
//                          evenly across the shards. Incompatible with
//                          --record, whose byte-reproducible call
//                          sequence is only defined for one engine
//     --faults             inject transport faults (loss, bursts,
//                          reordering, clock jitter, NaN/Inf samples)
//                          into the CSI and IMU feeds; implies fleet
//                          mode (use --threads to add workers)
//     --fault-drop P       override the i.i.d. loss probability
//     --fault-nan P        override the corruption probability
//     --async-ingest       feed the fleet through the engine's bounded
//                          ingest rings (offer_* + batch drain) instead
//                          of the synchronous push path; implies fleet
//     --ingest-policy X    ring overload policy: block | drop-oldest |
//                          drop-newest (default drop-oldest)
//     --record PATH        flight-record the run into a .vrlog at PATH
//                          (implies fleet mode; verify later with
//                          `vihot_replay verify PATH`)
//     --csv                machine-readable one-line summary
//     --metrics-out PATH   write the run's tracker/engine metric
//                          families (obs::Registry snapshot) to PATH;
//                          a .csv suffix selects CSV, anything else JSON
//
// Example: reproduce the Fig. 17b "w/o identifier" condition:
//   vihot_sim --steering --no-identifier

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <memory>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "replay/recorder.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "util/angle.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario NAME] [--list-scenarios]\n"
               "  [--seed N] [--sessions N] [--duration S] "
               "[--layout 1..5]\n"
               "  [--driver A|B|C] [--window-ms N] [--horizon-ms N] "
               "[--turn-speed DEG_S]\n"
               "  [--passenger] [--steering] [--no-identifier] "
               "[--vibration] [--interference]\n"
               "  [--music] [--seat-shift MM] [--naive] [--camera] "
               "[--threads K] [--shards N] [--csv]\n"
               "  [--faults] [--fault-drop P] [--fault-nan P] "
               "[--async-ingest]\n"
               "  [--ingest-policy block|drop-oldest|drop-newest] "
               "[--record PATH]\n"
               "  [--sanitizer-backend eq3|kalman] "
               "[--tracker-backend dtw|ekf]\n"
               "  [--metrics-out PATH]\n",
               argv0);
  std::exit(2);
}

double num_arg(int argc, char** argv, int& i, const char* argv0) {
  if (i + 1 >= argc) usage(argv0);
  return std::atof(argv[++i]);
}

/// Snapshots the sink into PATH (CSV for a .csv suffix, JSON otherwise).
bool write_metrics(const vihot::obs::Sink& sink, const std::string& path) {
  vihot::obs::Registry registry;
  sink.attach_to(registry);
  std::ofstream os(path);
  if (!os) return false;
  const bool as_csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (as_csv) {
    registry.write_csv(os);
  } else {
    registry.write_json(os);
  }
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vihot;
  sim::ScenarioConfig config;
  config.seed = 2024;
  config.runtime_sessions = 5;
  config.runtime_duration_s = 30.0;
  bool csv = false;
  bool fleet = false;
  std::size_t threads = 0;
  std::size_t shards = 1;
  std::string metrics_out;
  std::string record_out;
  std::string scenario_name;
  bool list_scenarios = false;
  bool seed_set = false;
  bool duration_set = false;
  // First flag that configures the ad-hoc scenario path; any such flag
  // contradicts --scenario (the pack already defines the cabin).
  std::string adhoc_flag;
  obs::Sink sink;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (adhoc_flag.empty() && a != "--scenario" && a != "--list-scenarios" &&
        a != "--seed" && a != "--duration" && a != "--threads" &&
        a != "--shards" && a != "--record" && a != "--csv" &&
        a != "--metrics-out") {
      adhoc_flag = a;
    }
    if (a == "--scenario") {
      if (i + 1 >= argc) usage(*argv);
      scenario_name = argv[++i];
    } else if (a == "--list-scenarios") {
      list_scenarios = true;
    } else if (a == "--seed") {
      config.seed = static_cast<std::uint64_t>(num_arg(argc, argv, i, *argv));
      seed_set = true;
    } else if (a == "--sessions") {
      config.runtime_sessions =
          static_cast<std::size_t>(num_arg(argc, argv, i, *argv));
    } else if (a == "--duration") {
      config.runtime_duration_s = num_arg(argc, argv, i, *argv);
      duration_set = true;
    } else if (a == "--layout") {
      const int l = static_cast<int>(num_arg(argc, argv, i, *argv));
      if (l < 1 || l > 5) usage(*argv);
      config.layout = static_cast<channel::AntennaLayout>(l);
    } else if (a == "--driver") {
      if (i + 1 >= argc) usage(*argv);
      const std::string d = argv[++i];
      if (d == "A") config.driver = motion::driver_a();
      else if (d == "B") config.driver = motion::driver_b();
      else if (d == "C") config.driver = motion::driver_c();
      else usage(*argv);
    } else if (a == "--window-ms") {
      config.tracker.matcher.window_s =
          num_arg(argc, argv, i, *argv) / 1000.0;
    } else if (a == "--horizon-ms") {
      config.prediction_horizon_s = num_arg(argc, argv, i, *argv) / 1000.0;
    } else if (a == "--turn-speed") {
      config.head_turn_speed_rad_s =
          util::deg_to_rad(num_arg(argc, argv, i, *argv));
    } else if (a == "--passenger") {
      config.passenger_present = true;
    } else if (a == "--steering") {
      config.steering_events = true;
    } else if (a == "--no-identifier") {
      config.tracker.steering.enabled = false;
    } else if (a == "--vibration") {
      config.antenna_vibration = true;
    } else if (a == "--interference") {
      config.scheduler.load = wifi::ChannelLoad::kInterfering;
    } else if (a == "--music") {
      config.music_playing = true;
    } else if (a == "--seat-shift") {
      config.seat_shift_m = num_arg(argc, argv, i, *argv) / 1000.0;
    } else if (a == "--sanitizer-backend") {
      if (i + 1 >= argc) usage(*argv);
      if (!core::parse_sanitizer_backend(argv[++i],
                                         &config.tracker.sanitizer_backend)) {
        std::fprintf(stderr, "unknown sanitizer backend: %s\n", argv[i]);
        usage(*argv);
      }
    } else if (a == "--tracker-backend") {
      if (i + 1 >= argc) usage(*argv);
      if (!core::parse_tracker_backend(argv[++i],
                                       &config.tracker.tracker_backend)) {
        std::fprintf(stderr, "unknown tracker backend: %s\n", argv[i]);
        usage(*argv);
      }
    } else if (a == "--naive") {
      config.collect_naive_baseline = true;
    } else if (a == "--camera") {
      config.collect_camera_baseline = true;
    } else if (a == "--threads") {
      fleet = true;
      threads = static_cast<std::size_t>(num_arg(argc, argv, i, *argv));
    } else if (a == "--shards") {
      fleet = true;
      shards = static_cast<std::size_t>(num_arg(argc, argv, i, *argv));
      if (shards == 0) shards = 1;
    } else if (a == "--faults") {
      config.faults.enabled = true;
    } else if (a == "--fault-drop") {
      config.faults.drop_prob = num_arg(argc, argv, i, *argv);
    } else if (a == "--fault-nan") {
      config.faults.nan_prob = num_arg(argc, argv, i, *argv);
    } else if (a == "--async-ingest") {
      config.async_ingest = true;
    } else if (a == "--ingest-policy") {
      if (i + 1 >= argc) usage(*argv);
      const std::string p = argv[++i];
      if (p == "block") {
        config.ingest.policy = engine::OverloadPolicy::kBlock;
      } else if (p == "drop-oldest") {
        config.ingest.policy = engine::OverloadPolicy::kDropOldest;
      } else if (p == "drop-newest") {
        config.ingest.policy = engine::OverloadPolicy::kDropNewest;
      } else {
        usage(*argv);
      }
    } else if (a == "--record") {
      if (i + 1 >= argc) usage(*argv);
      record_out = argv[++i];
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "--metrics-out") {
      if (i + 1 >= argc) usage(*argv);
      metrics_out = argv[++i];
    } else {
      usage(*argv);
    }
  }
  if (list_scenarios) {
    std::printf("scenario packs:\n");
    for (const scenario::ScenarioSpec& p : scenario::all_packs()) {
      std::size_t tracked = 0;
      for (const scenario::OccupantSpec& o : p.occupants) {
        if (o.tracked) ++tracked;
      }
      std::printf("  %-26s %s\n  %-26s   seed %llu, %.0f s, %zu occupant%s "
                  "(%zu tracked)\n",
                  p.name.c_str(), p.summary.c_str(), "",
                  static_cast<unsigned long long>(p.seed), p.duration_s,
                  p.occupants.size(), p.occupants.size() == 1 ? "" : "s",
                  tracked);
    }
    return 0;
  }

  if (!scenario_name.empty()) {
    if (!adhoc_flag.empty()) {
      std::fprintf(stderr,
                   "error: --scenario is incompatible with %s: the pack "
                   "already defines the cabin (occupants, motion, "
                   "interference, faults); only --seed, --duration, "
                   "--threads, --shards, --record, --csv and "
                   "--metrics-out compose with it\n",
                   adhoc_flag.c_str());
      usage(*argv);
    }
    const scenario::ScenarioSpec* spec = scenario::find_pack(scenario_name);
    if (spec == nullptr) {
      std::fprintf(stderr,
                   "error: unknown scenario pack '%s' (see "
                   "--list-scenarios)\n",
                   scenario_name.c_str());
      usage(*argv);
    }
    if (!record_out.empty() && shards > 1) {
      std::fprintf(stderr,
                   "error: --record requires --shards 1 (the recorded "
                   "call sequence is only deterministic for a "
                   "single-engine fleet)\n");
      return 2;
    }
    std::unique_ptr<replay::Recorder> recorder;
    if (!record_out.empty()) {
      replay::Recorder::Config rc;
      rc.path = record_out;
      rc.sink = &sink;
      recorder = std::make_unique<replay::Recorder>(rc);
      if (!recorder->ok()) {
        std::fprintf(stderr, "error: %s\n", recorder->error().c_str());
        return 1;
      }
    }
    scenario::RunOptions opt;
    opt.threads = threads;
    opt.shards = shards;
    opt.sink = &sink;
    opt.tap = recorder.get();
    opt.duration_override_s = duration_set ? config.runtime_duration_s : 0.0;
    opt.seed_override = seed_set ? config.seed : 0;
    // Recording runs typically shorten the pack for corpus-sized logs;
    // the envelope verdict is the scenario ctest label's job there.
    const bool check_envelope = record_out.empty();
    const scenario::ScenarioOutcome res =
        scenario::run_pack(*spec, opt, check_envelope);
    if (recorder != nullptr) {
      const replay::Recorder::Totals t = recorder->totals();
      if (!recorder->close()) {
        std::fprintf(stderr, "error: %s\n", recorder->error().c_str());
        return 1;
      }
      std::fprintf(csv ? stderr : stdout,
                   "  recorded:   %s (%llu csi, %llu imu, %llu camera, "
                   "%llu ticks%s)\n",
                   record_out.c_str(),
                   static_cast<unsigned long long>(t.csi_frames),
                   static_cast<unsigned long long>(t.imu_samples),
                   static_cast<unsigned long long>(t.camera_frames),
                   static_cast<unsigned long long>(t.ticks),
                   t.truncated ? ", TRUNCATED" : "");
    }
    if (!metrics_out.empty() && !write_metrics(sink, metrics_out)) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
    const sim::ErrorCollector merged = res.merged_errors();
    if (csv) {
      std::printf(
          "pack,median_deg,p90_deg,n,sessions_opened,sessions_closed,ticks,"
          "envelope_pass\n%s,%.2f,%.2f,%zu,%zu,%zu,%zu,%d\n",
          res.pack.c_str(), merged.median_deg(),
          merged.percentile_deg(90.0), merged.size(), res.sessions_opened,
          res.sessions_closed, res.ticks,
          res.envelope_pass ? 1 : 0);
    } else {
      std::printf("ViHOT scenario pack '%s' (%s)\n", spec->name.c_str(),
                  spec->summary.c_str());
      std::printf("  sessions:   %zu opened, %zu closed mid-run, %zu batch "
                  "ticks\n",
                  res.sessions_opened, res.sessions_closed, res.ticks);
      for (const scenario::OccupantOutcome& oo : res.occupants) {
        if (!oo.tracked) {
          std::printf("  %-10s  interference only [%.1f, %.1f] s\n",
                      oo.name.c_str(), oo.enter_s, oo.leave_s);
          continue;
        }
        std::printf("  %-10s  median %.1f deg, p90 %.1f (n=%zu)",
                    oo.name.c_str(), oo.errors.median_deg(),
                    oo.errors.percentile_deg(90.0), oo.errors.size());
        if (oo.enter_s > 0.0) std::printf(", relock %.2f s", oo.relock_s);
        std::printf("\n");
      }
      if (check_envelope) {
        std::printf("  envelope:   %s\n",
                    res.envelope_pass ? "PASS" : "FAIL");
        for (const std::string& f : res.envelope_failures) {
          std::printf("    breach:   %s\n", f.c_str());
        }
      }
      if (!metrics_out.empty()) {
        std::printf("  metrics:    written to %s\n", metrics_out.c_str());
      }
    }
    return res.envelope_pass ? 0 : 1;
  }

  if (!metrics_out.empty()) config.tracker.sink = &sink;
  // Faults, async ingest and recording are fleet-path features: all act
  // on the pre-generated streams / engine feed loop of run_fleet.
  if (config.faults.enabled || config.async_ingest || !record_out.empty()) {
    fleet = true;
  }

  if (fleet) {
    if (!record_out.empty() && shards > 1) {
      std::fprintf(stderr,
                   "error: --record requires --shards 1 (the recorded "
                   "call sequence is only deterministic for a "
                   "single-engine fleet)\n");
      return 2;
    }
    std::unique_ptr<replay::Recorder> recorder;
    if (!record_out.empty()) {
      replay::Recorder::Config rc;
      rc.path = record_out;
      rc.sink = &sink;
      recorder = std::make_unique<replay::Recorder>(rc);
      if (!recorder->ok()) {
        std::fprintf(stderr, "error: %s\n", recorder->error().c_str());
        return 1;
      }
    }
    const sim::FleetResult res = sim::run_fleet(
        config, threads, metrics_out.empty() ? nullptr : &sink,
        recorder.get(), shards);
    if (recorder != nullptr) {
      const replay::Recorder::Totals t = recorder->totals();
      if (!recorder->close()) {
        std::fprintf(stderr, "error: %s\n", recorder->error().c_str());
        return 1;
      }
      // The one record-mode line that must not pollute --csv output.
      std::fprintf(csv ? stderr : stdout,
                  "  recorded:   %s (%llu csi, %llu imu, %llu camera, "
                  "%llu ticks%s)\n",
                  record_out.c_str(),
                  static_cast<unsigned long long>(t.csi_frames),
                  static_cast<unsigned long long>(t.imu_samples),
                  static_cast<unsigned long long>(t.camera_frames),
                  static_cast<unsigned long long>(t.ticks),
                  t.truncated ? ", TRUNCATED" : "");
    }
    if (!metrics_out.empty() && !write_metrics(sink, metrics_out)) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
    if (csv) {
      std::printf(
          "median_deg,mean_deg,p90_deg,n,sessions,shards,threads,ticks,"
          "serve_wall_s,session_estimates_per_s\n"
          "%.2f,%.2f,%.2f,%zu,%zu,%zu,%zu,%zu,%.3f,%.0f\n",
          res.errors.median_deg(), res.errors.mean_deg(),
          res.errors.percentile_deg(90.0), res.errors.size(), res.sessions,
          res.shards, threads, res.ticks, res.serve_wall_s,
          res.session_estimates_per_s);
      return 0;
    }
    std::printf("ViHOT fleet summary (%zu sessions x %.0f s, %zu shard%s, "
                "%zu worker threads)\n",
                res.sessions, config.runtime_duration_s, res.shards,
                res.shards == 1 ? "" : "s", threads);
    std::printf("  errors:     median %.1f deg, mean %.1f, p90 %.1f "
                "(n=%zu)\n",
                res.errors.median_deg(), res.errors.mean_deg(),
                res.errors.percentile_deg(90.0), res.errors.size());
    std::printf("  serving:    %zu batch ticks in %.2f s -> %.0f "
                "session-estimates/s\n",
                res.ticks, res.serve_wall_s, res.session_estimates_per_s);
    if (res.mean_fallback_fraction > 0.0) {
      std::printf("  fallback:   %.1f%% of estimates in camera mode\n",
                  res.mean_fallback_fraction * 100.0);
    }
    std::printf("  obs:        batch mean %.0f us; worst CSI gap %.0f ms; "
                "%llu out-of-order feeds dropped\n",
                res.mean_batch_latency_us, res.max_csi_feed_gap_ms,
                static_cast<unsigned long long>(res.out_of_order_feeds));
    if (config.faults.enabled) {
      std::printf("  faults:     %zu lost (%zu in bursts), %zu reordered, "
                  "%zu corrupted of %zu delivered\n",
                  res.faults.total_dropped(), res.faults.burst_dropped,
                  res.faults.reordered, res.faults.corrupted,
                  res.faults.delivered);
      std::printf("  recovery:   %llu non-finite rejects, %llu stale-window "
                  "relocks\n",
                  static_cast<unsigned long long>(res.non_finite_feeds),
                  static_cast<unsigned long long>(res.stale_relocks));
    }
    if (config.async_ingest) {
      std::printf("  ingest:     %llu enqueued, %llu dropped by overload "
                  "policy\n",
                  static_cast<unsigned long long>(res.ingest_enqueued),
                  static_cast<unsigned long long>(res.ingest_dropped));
    }
    if (!res.worker_items.empty() && threads > 0) {
      std::printf("  workers:    items drained per worker:");
      for (const std::uint64_t n : res.worker_items) {
        std::printf(" %llu", static_cast<unsigned long long>(n));
      }
      std::printf("\n");
    }
    if (!metrics_out.empty()) {
      std::printf("  metrics:    written to %s\n", metrics_out.c_str());
    }
    return 0;
  }

  sim::ExperimentRunner runner(config);
  const sim::ExperimentResult res = runner.run();
  if (!metrics_out.empty() && !write_metrics(sink, metrics_out)) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n",
                 metrics_out.c_str());
    return 1;
  }

  if (csv) {
    std::printf(
        "median_deg,mean_deg,p90_deg,max_deg,n,csi_rate_hz,max_gap_ms,"
        "fallback_frac\n%.2f,%.2f,%.2f,%.2f,%zu,%.0f,%.1f,%.3f\n",
        res.errors.median_deg(), res.errors.mean_deg(),
        res.errors.percentile_deg(90.0), res.errors.max_deg(),
        res.errors.size(), res.mean_csi_rate_hz, res.max_gap_s * 1e3,
        res.mean_fallback_fraction);
    return 0;
  }

  std::printf("ViHOT scenario summary (%zu sessions x %.0f s)\n",
              config.runtime_sessions, config.runtime_duration_s);
  std::printf("  layout:     %s\n", channel::to_string(config.layout).c_str());
  std::printf("  driver:     %s\n", config.driver.name.c_str());
  std::printf("  errors:     median %.1f deg, mean %.1f, p90 %.1f, max %.1f "
              "(n=%zu)\n",
              res.errors.median_deg(), res.errors.mean_deg(),
              res.errors.percentile_deg(90.0), res.errors.max_deg(),
              res.errors.size());
  std::printf("  csi link:   %.0f Hz mean rate, %.0f ms max gap\n",
              res.mean_csi_rate_hz, res.max_gap_s * 1e3);
  if (res.mean_fallback_fraction > 0.0) {
    std::printf("  fallback:   %.1f%% of estimates in camera mode\n",
                res.mean_fallback_fraction * 100.0);
  }
  if (!res.naive_errors.empty()) {
    std::printf("  naive:      median %.1f deg (Eq. 5 baseline)\n",
                res.naive_errors.median_deg());
  }
  if (!res.camera_errors.empty()) {
    std::printf("  camera:     median %.1f deg (30 FPS baseline)\n",
                res.camera_errors.median_deg());
  }
  const obs::TrackerStatsSnapshot& st = res.stage_stats;
  std::printf("  stages:     windows flat/hinted/global %llu/%llu/%llu; "
              "relocks %llu (%llu accepted); tie-breaks %llu\n",
              static_cast<unsigned long long>(st.window_flat),
              static_cast<unsigned long long>(st.window_hinted),
              static_cast<unsigned long long>(st.window_global),
              static_cast<unsigned long long>(st.relock_widen +
                                              st.relock_global),
              static_cast<unsigned long long>(st.relock_accepted),
              static_cast<unsigned long long>(st.tie_break_applied));
  if (!metrics_out.empty()) {
    std::printf("  metrics:    written to %s\n", metrics_out.c_str());
  }
  return 0;
}
