// vihot_trace: record a simulated drive into trace files, or run the
// tracker offline over previously recorded traces — the same record/
// analyze split a real Intel 5300 deployment uses.
//
//   vihot_trace record <prefix> [--seed N] [--duration S] [--steering]
//       writes <prefix>.{csi,imu,truth,profile}
//   vihot_trace track <prefix> [--window-ms N]
//       replays <prefix>.csi/.imu through ViHotTracker and scores
//       against <prefix>.truth

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "sim/experiment.h"
#include "core/profile_io.h"
#include "sim/metrics.h"
#include "util/angle.h"
#include "wifi/trace_io.h"

namespace {

using namespace vihot;

int record(const std::string& prefix, std::uint64_t seed, double duration,
           bool steering) {
  sim::ScenarioConfig config;
  config.seed = seed;
  config.runtime_duration_s = duration;
  config.steering_events = steering;

  // Build and persist the profile so `track` need not rebuild it.
  sim::ExperimentRunner runner(config);
  const core::CsiProfile profile = runner.build_profile();
  if (!core::save_profile(prefix + ".profile", profile)) {
    std::fprintf(stderr, "error: cannot write %s.profile\n",
                 prefix.c_str());
    return 1;
  }

  util::Rng rng(seed ^ 0xabcdef1234567ULL);
  const motion::HeadPositionGrid grid(config.driver.head_center,
                                      config.num_positions,
                                      config.position_spacing_m);
  util::Rng chan_rng = rng.fork("channel");
  const channel::ChannelModel channel =
      sim::make_channel(config, 0.0, chan_rng);
  wifi::WifiLink link(channel, config.noise, config.scheduler,
                      rng.fork("link"));
  sim::DriveSession session(config, grid.position(grid.count() / 2),
                            rng.fork("drive"));
  const auto csi = link.capture(0.0, duration, [&](double t) {
    return session.cabin_state_at(t);
  });
  imu::PhoneImu phone(imu::PhoneImu::Config{}, rng.fork("imu"));
  const auto imu_samples = phone.capture(0.0, duration,
                                         session.car_dynamics(),
                                         session.steering());

  if (!wifi::write_csi_trace(prefix + ".csi", csi) ||
      !wifi::write_imu_trace(prefix + ".imu", imu_samples)) {
    std::fprintf(stderr, "error: cannot write traces at prefix %s\n",
                 prefix.c_str());
    return 1;
  }
  // Ground truth + profile snapshot for offline scoring.
  {
    std::ofstream os(prefix + ".truth");
    os << "# vihot-truth v1 seed=" << seed << '\n';
    // max_digits10: every double round-trips bit-exactly through the
    // decimal text (precision(12) silently lost the low bits).
    os.precision(std::numeric_limits<double>::max_digits10);
    for (double t = 0.0; t < duration; t += 0.01) {
      os << t << ',' << session.head_at(t).pose.theta << '\n';
    }
  }
  std::printf("recorded %zu CSI frames, %zu IMU samples, %.0f s of truth "
              "and the CSI profile -> %s.{csi,imu,truth,profile}\n",
              csi.size(), imu_samples.size(), duration, prefix.c_str());
  return 0;
}

int track(const std::string& prefix, double window_ms) {
  const auto csi = wifi::read_csi_trace(prefix + ".csi");
  const auto imu_samples = wifi::read_imu_trace(prefix + ".imu");
  if (!csi || !imu_samples) {
    std::fprintf(stderr, "error: cannot read traces at prefix %s\n",
                 prefix.c_str());
    return 1;
  }
  // Truth file: "t,theta" rows after the header with the seed.
  util::TimeSeries truth;
  std::uint64_t seed = 0;
  {
    std::ifstream is(prefix + ".truth");
    std::string header;
    if (!is || !std::getline(is, header)) {
      std::fprintf(stderr, "error: cannot read %s.truth\n", prefix.c_str());
      return 1;
    }
    const auto pos = header.find("seed=");
    if (pos != std::string::npos) seed = std::stoull(header.substr(pos + 5));
    double t = 0.0;
    double theta = 0.0;
    char comma = 0;
    while (is >> t >> comma >> theta) truth.push(t, theta);
  }

  sim::ScenarioConfig config;
  config.seed = seed;
  if (window_ms > 0.0) config.tracker.matcher.window_s = window_ms / 1000.0;
  // Prefer the persisted profile; rebuild from the seed as a fallback.
  core::CsiProfile profile;
  if (const auto stored = core::load_profile(prefix + ".profile")) {
    profile = *stored;
    std::printf("loaded profile from %s.profile (%zu positions)\n",
                prefix.c_str(), profile.size());
  } else {
    sim::ExperimentRunner runner(config);
    profile = runner.build_profile();
    std::printf("rebuilt profile from seed %llu\n",
                static_cast<unsigned long long>(seed));
  }
  core::ViHotTracker tracker(profile, config.tracker);

  sim::ErrorCollector errors;
  std::size_t ci = 0;
  std::size_t ii = 0;
  const double t_end = csi->back().t;
  for (double t = 1.5; t < t_end; t += 0.05) {
    while (ci < csi->size() && (*csi)[ci].t <= t) {
      tracker.push_csi((*csi)[ci++]);
    }
    while (ii < imu_samples->size() && (*imu_samples)[ii].t <= t) {
      tracker.push_imu((*imu_samples)[ii++]);
    }
    const core::TrackResult r = tracker.estimate(t);
    if (!r.valid || truth.empty()) continue;
    const double theta_true = truth.interpolate(t);
    if (std::abs(theta_true) < 0.035) continue;
    errors.add(sim::angular_error_deg(r.theta_rad, theta_true));
  }
  std::printf("tracked %zu frames offline: median %.1f deg, p90 %.1f, "
              "max %.1f (n=%zu)\n",
              csi->size(), errors.median_deg(),
              errors.percentile_deg(90.0), errors.max_deg(), errors.size());
  return 0;
}

}  // namespace

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s record <prefix> [--seed N] [--duration S] "
               "[--steering]\n"
               "       %s track <prefix> [--window-ms N]\n",
               argv0, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  const std::string mode = argv[1];
  const std::string prefix = argv[2];
  std::uint64_t seed = 99;
  double duration = 30.0;
  double window_ms = 0.0;
  bool steering = false;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") {
      if (i + 1 >= argc) usage(argv[0]);
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--duration") {
      if (i + 1 >= argc) usage(argv[0]);
      duration = std::atof(argv[++i]);
    } else if (a == "--window-ms") {
      if (i + 1 >= argc) usage(argv[0]);
      window_ms = std::atof(argv[++i]);
    } else if (a == "--steering") {
      steering = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (mode == "record") return record(prefix, seed, duration, steering);
  if (mode == "track") return track(prefix, window_ms);
  std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
  usage(argv[0]);
}
