// vihotd: the tracking-as-a-service daemon.
//
//   vihotd --socket PATH [--shards N] [--threads-per-shard K]
//          [--ingest-capacity N] [--ingest-policy block|drop-oldest|
//          drop-newest] [--sub-capacity N] [--sub-policy ...]
//          [--drain-timeout-ms N] [--health-on-exit PATH]
//
// Serves TrackerEngine sessions over a local socket (protocol in
// src/daemon/protocol.h): feeders stream CSI/IMU/camera and tick the
// clock, subscribers receive every tick's TrackResults, a control
// client can read health JSON or request shutdown. SIGTERM/SIGINT
// drain gracefully: stop accepting, reap feeders, flush subscriber
// queues (terminating each stream with kBye), exit 0.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "daemon/daemon.h"

namespace {

vihot::daemon::Daemon* g_daemon = nullptr;

void on_signal(int) {
  // Async-signal-safe: a single atomic store; serve() notices within
  // its poll interval.
  if (g_daemon != nullptr) g_daemon->request_shutdown();
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [options]\n"
      "  --shards N              engine shards (default 1)\n"
      "  --threads-per-shard K   worker threads per shard (default 0 = "
      "inline)\n"
      "  --ingest-capacity N     per-session ingest ring size (default "
      "8192)\n"
      "  --ingest-policy P       block|drop-oldest|drop-newest (default "
      "drop-oldest)\n"
      "  --sub-capacity N        subscriber queue frames (default 64)\n"
      "  --sub-policy P          subscriber overflow policy (default "
      "drop-oldest)\n"
      "  --drain-timeout-ms N    subscriber flush budget at shutdown "
      "(default 2000)\n"
      "  --health-on-exit PATH   write a final health JSON before exit\n",
      argv0);
  std::exit(2);
}

bool parse_policy(const char* s, vihot::engine::OverloadPolicy* out) {
  if (std::strcmp(s, "block") == 0) {
    *out = vihot::engine::OverloadPolicy::kBlock;
  } else if (std::strcmp(s, "drop-oldest") == 0) {
    *out = vihot::engine::OverloadPolicy::kDropOldest;
  } else if (std::strcmp(s, "drop-newest") == 0) {
    *out = vihot::engine::OverloadPolicy::kDropNewest;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vihot;
  daemon::DaemonConfig config;
  std::string health_on_exit;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--socket") {
      config.socket_path = next();
    } else if (a == "--shards") {
      config.shards =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--threads-per-shard") {
      config.threads_per_shard =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--ingest-capacity") {
      config.ingest_capacity =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--ingest-policy") {
      if (!parse_policy(next(), &config.ingest_policy)) usage(argv[0]);
    } else if (a == "--sub-capacity") {
      config.subscriber.capacity =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (a == "--sub-policy") {
      if (!parse_policy(next(), &config.subscriber.policy)) usage(argv[0]);
    } else if (a == "--drain-timeout-ms") {
      config.drain_timeout_ms =
          static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (a == "--health-on-exit") {
      health_on_exit = next();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (config.socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    usage(argv[0]);
  }

  daemon::Daemon daemon(config);
  if (!daemon.start()) {
    std::fprintf(stderr, "vihotd: %s\n", daemon.error().c_str());
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::fprintf(stderr, "vihotd: serving on %s (%zu shard%s)\n",
               config.socket_path.c_str(), daemon.fleet().num_shards(),
               daemon.fleet().num_shards() == 1 ? "" : "s");
  daemon.serve();
  if (!health_on_exit.empty()) {
    std::ofstream os(health_on_exit);
    if (os) os << daemon.health_json();
  }
  std::fprintf(stderr, "vihotd: drained, exiting\n");
  g_daemon = nullptr;
  return 0;
}
